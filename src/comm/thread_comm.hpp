// Real in-process collectives over a group of worker threads.
//
// This is the "cluster" the end-to-end trainer and the numerical tests run
// on: p ranks, each a thread, exchanging messages through per-step
// mailboxes. The all-reduce genuinely executes the ring algorithm (p-1
// reduce-scatter steps followed by p-1 all-gather steps, chunked), not a
// shortcut shared-memory sum, so the aggregation path compression methods
// must be compatible with is exercised for real.
//
// Fault tolerance: every blocking wait carries a deadline, so a rank that
// stops participating surfaces as a RankFailure error on the survivors
// instead of hanging the group. A rank can also declare its own death
// (fail()), which aborts in-flight collectives immediately. Survivors then
// call shrink() collectively: the failed ranks are removed, the ring/tree is
// rebuilt over a dense re-indexing of the survivors, and the group continues
// at world size p-1 — world_size() always reports the ACTIVE count, which is
// what gives compressor mean-reduction its p-1 reweighting for free.
//
// Elastic re-expansion: grow()/rejoin() are the inverse of shrink(). A
// replacement worker re-spawned under a previously-reaped rank id parks in
// rejoin() while every survivor calls grow() with the expected joiner set;
// when both sides meet, the joiners are re-admitted, their stale mailboxes
// are cleared, and the dense ring/tree order is rebuilt at the larger world
// size. State resync (params, optimizer, compressor state) is the caller's
// job, done in-band right after the grow via broadcast_bytes().
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sync.hpp"

namespace gradcomp::comm {

// Thrown by collectives when one or more ranks are (or are detected) dead.
// Survivors are expected to unwind to a recovery point and call shrink().
class RankFailure : public std::runtime_error {
 public:
  explicit RankFailure(std::vector<int> failed);

  // Original rank ids of the ranks considered dead, ascending.
  [[nodiscard]] const std::vector<int>& failed() const noexcept { return failed_; }

 private:
  std::vector<int> failed_;
};

class ThreadComm {
 public:
  // `timeout` bounds every blocking collective wait; it must exceed the
  // longest compute gap between two collective calls on any healthy rank.
  explicit ThreadComm(int world_size,
                      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  ThreadComm(const ThreadComm&) = delete;
  ThreadComm& operator=(const ThreadComm&) = delete;

  // ACTIVE rank count (shrinks as ranks fail); the denominator for
  // mean-semantics aggregation.
  [[nodiscard]] int world_size() const noexcept {
    return active_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int initial_world_size() const noexcept { return initial_world_size_; }
  [[nodiscard]] bool is_active(int rank) const;
  // Active original rank ids, ascending (the dense ring order).
  [[nodiscard]] std::vector<int> active_ranks() const;
  // Ranks that died and have not been reaped by shrink() yet.
  [[nodiscard]] std::vector<int> failed_ranks() const;

  void set_timeout(std::chrono::milliseconds timeout);
  [[nodiscard]] std::chrono::milliseconds timeout() const;

  // All collectives must be entered by every ACTIVE rank (SPMD). Rank is the
  // caller's ORIGINAL identity in [0, initial_world_size); identities are
  // stable across shrinks.

  // Deadline-bounded barrier across the active ranks. Throws RankFailure if
  // a peer dies (fail()) or fails to arrive before the timeout; the
  // non-arrived ranks are marked failed.
  void barrier(int rank);

  // Declares this rank dead: it must make no further calls on the group.
  // Peers blocked in (or later entering) a collective observe RankFailure.
  void fail(int rank);

  // Collective among the survivors after a RankFailure: removes every failed
  // rank from the group, rebuilds the dense ring order, clears aborted
  // collective state, and returns the ranks that were removed (identical on
  // every caller). Throws std::runtime_error if no survivors would remain.
  // If yet another rank dies (fail()) while survivors are parked inside the
  // shrink barrier, the consensus re-forms without it: both casualties are
  // reaped in the same shrink.
  std::vector<int> shrink(int rank);

  // Collective re-admission of previously-reaped ranks. Every ACTIVE rank
  // calls grow(rank, joiners) with the SAME joiner set (ascending original
  // rank ids, all currently inactive) while each joiner calls rejoin(rank);
  // when all survivors and all expected joiners have arrived, the joiners
  // are reactivated, their stale mailboxes are dropped, and the dense
  // ring/tree order is rebuilt. Both calls return the new active rank list
  // (identical on every participant). On timeout the absent survivors are
  // blamed as failed and RankFailure is thrown; a mismatched joiner set
  // aborts the round with std::logic_error on every participant.
  std::vector<int> grow(int rank, std::span<const int> joiners);
  std::vector<int> rejoin(int rank);

  // Copies root's byte payload into every active rank's `data` (receivers
  // are resized to match — the variable-length counterpart of broadcast(),
  // used for the rejoin state-resync blob).
  void broadcast_bytes(int rank, int root, std::vector<std::byte>& data);

  // Which all-reduce algorithm to execute. Ring is bandwidth-optimal with
  // latency ~p; the binomial double-tree-style reduce+broadcast has latency
  // ~log2(p) (the trade NCCL switches on at scale, Section 2.2).
  enum class Algorithm : std::uint8_t { kRing, kTree };

  // In-place sum all-reduce. Every rank's `data` must have the same length.
  void allreduce_sum(int rank, std::span<float> data,
                     Algorithm algorithm = Algorithm::kRing);

  // Gathers each active rank's byte payload; returns all payloads in dense
  // (ring) order. Payload sizes may differ across ranks (the TopK case).
  [[nodiscard]] std::vector<std::vector<std::byte>> allgather(int rank,
                                                              std::span<const std::byte> bytes);

  // Float convenience wrapper over allgather.
  [[nodiscard]] std::vector<std::vector<float>> allgather_floats(int rank,
                                                                 std::span<const float> values);

  // True ring all-gather of equal-size float blocks: p-1 steps, each rank
  // forwarding the block it received in the previous step to its successor
  // (the message pattern whose wire cost is n*(p-1)/BW — the term that
  // dooms non-all-reducible compressors at scale). `out` must hold
  // world_size() * mine.size() floats and receives the blocks in dense rank
  // order.
  void allgather_ring(int rank, std::span<const float> mine, std::span<float> out);

  // Copies root's data into every rank's buffer (sizes must match). Throws
  // RankFailure if root is dead.
  void broadcast(int rank, int root, std::span<float> data);

  // Counts completed collective operations (for tests asserting the ring
  // path actually ran).
  [[nodiscard]] std::uint64_t allreduce_count() const noexcept { return allreduce_ops_; }

 private:
  void validate_rank(int rank) const;
  // The deadline-bounded generation barrier under every collective.
  void sync(int rank);
  [[noreturn]] void throw_failure_locked() const GRADCOMP_REQUIRES(mu_);
  void rebuild_dense_locked() GRADCOMP_REQUIRES(mu_);
  // True when every live survivor has entered grow() and every expected
  // joiner is parked in rejoin().
  [[nodiscard]] bool grow_ready_locked() const GRADCOMP_REQUIRES(mu_);
  // Re-admits the expected joiners and publishes the new ring.
  void complete_grow_locked() GRADCOMP_REQUIRES(mu_);
  // Deadline handling shared by grow() and rejoin(): blames absent
  // survivors and aborts the round.
  void abort_grow_locked() GRADCOMP_REQUIRES(mu_);
  // Thrown by grow()/rejoin() waiters observing an aborted round.
  [[noreturn]] void throw_grow_abort_locked() const GRADCOMP_REQUIRES(mu_);
  // Count of still-live survivors of the in-progress shrink.
  [[nodiscard]] int live_survivors_locked() const GRADCOMP_REQUIRES(mu_);
  // Reaps the agreed casualties and publishes the post-shrink ring.
  void complete_shrink_locked() GRADCOMP_REQUIRES(mu_);
  void allreduce_ring(int rank, std::span<float> data);
  // Binomial-tree reduce to the dense root followed by binomial broadcast.
  void allreduce_tree(int rank, std::span<float> data);

  const int initial_world_size_;
  std::chrono::milliseconds timeout_ GRADCOMP_GUARDED_BY(mu_);

  // Rank-ordered (core::sync): the group lock sits above the pool locks, so
  // pool workers parked in a future pool-backed collective wait acquire in
  // hierarchy order — and a collective entered while holding the trainer
  // lock trips the OrderedMutex check instead of risking a deadlock.
  mutable core::sync::OrderedMutex mu_{core::sync::LockRank::kCommGroup, "comm-group"};
  core::sync::OrderedCondVar cv_;
  // Control plane: every field below is group-membership / barrier state,
  // mutated and read only under mu_ (machine-checked by clang -Wthread-safety
  // and gradcheck --share).
  std::uint64_t epoch_ GRADCOMP_GUARDED_BY(mu_) = 0;  // completed barrier generations
  int arrived_ GRADCOMP_GUARDED_BY(mu_) = 0;
  bool aborted_ GRADCOMP_GUARDED_BY(mu_) = false;  // a failure interrupted collectives
  std::vector<char> arrived_flag_ GRADCOMP_GUARDED_BY(mu_);  // by original rank, for blame
  std::vector<char> active_ GRADCOMP_GUARDED_BY(mu_);        // by original rank
  std::vector<char> failed_ GRADCOMP_GUARDED_BY(mu_);  // dead, not yet reaped by shrink()
  std::atomic<int> active_count_;
  std::vector<char> shrink_flag_ GRADCOMP_GUARDED_BY(mu_);  // survivors inside shrink()
  int shrink_arrived_ GRADCOMP_GUARDED_BY(mu_) = 0;  // survivors entering shrink
  std::uint64_t shrink_epoch_ GRADCOMP_GUARDED_BY(mu_) = 0;
  std::vector<int> shrink_removed_ GRADCOMP_GUARDED_BY(mu_);  // in-progress shrink result

  std::vector<char> grow_flag_ GRADCOMP_GUARDED_BY(mu_);    // survivors inside grow()
  std::vector<char> rejoin_flag_ GRADCOMP_GUARDED_BY(mu_);  // joiners parked in rejoin()
  int grow_arrived_ GRADCOMP_GUARDED_BY(mu_) = 0;  // survivors that have entered grow()
  std::uint64_t grow_epoch_ GRADCOMP_GUARDED_BY(mu_) = 0;  // completed grow rounds
  bool grow_aborted_ GRADCOMP_GUARDED_BY(mu_) = false;  // round failed; waiters unwind
  std::vector<int> grow_expected_ GRADCOMP_GUARDED_BY(mu_);  // sorted in-progress joiner set
  std::vector<int> grow_result_ GRADCOMP_GUARDED_BY(mu_);  // active ranks after the grow

  // Data plane: rebuilt only while every participant is parked inside the
  // same barrier/shrink/grow generation, then read by the collectives
  // without the lock — the generation barrier's mutex orders publication.
  // Dense re-indexing of the active ranks: dense_[orig] in [0, active) or
  // -1; ranks_[dense] = orig.
  std::vector<int> dense_ GRADCOMP_SYNC_EXTERNAL("barrier-published ring order");
  std::vector<int> ranks_ GRADCOMP_SYNC_EXTERNAL("barrier-published ring order");

  // mail_[r] is the message most recently addressed to original rank r.
  std::vector<std::vector<float>> mail_
      GRADCOMP_SYNC_EXTERNAL("slot r written by one peer per step, epoch-fenced");
  std::vector<std::vector<std::byte>> byte_slots_
      GRADCOMP_SYNC_EXTERNAL("slot r written by one peer per step, epoch-fenced");
  const float* broadcast_src_ GRADCOMP_SYNC_EXTERNAL("root-written between barriers") = nullptr;
  std::size_t broadcast_len_ GRADCOMP_SYNC_EXTERNAL("root-written between barriers") = 0;
  const std::vector<std::byte>* byte_broadcast_src_
      GRADCOMP_SYNC_EXTERNAL("root-written between barriers") = nullptr;
  std::uint64_t allreduce_ops_ GRADCOMP_SYNC_EXTERNAL("dense rank 0 writes, epoch-fenced") = 0;
};

// Runs `body(rank)` on world_size threads and joins them. Exceptions thrown
// by any rank are rethrown (first one wins) after all threads join.
void run_ranks(int world_size, const std::function<void(int)>& body);

// Same, but only for the given (original) rank ids — the surviving subset
// after a shrink.
void run_ranks(std::span<const int> ranks, const std::function<void(int)>& body);

}  // namespace gradcomp::comm
