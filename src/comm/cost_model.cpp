#include "comm/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace gradcomp::comm {

namespace {

void require_valid(double bytes, int p, const Network& net) {
  if (bytes < 0) throw std::invalid_argument("collective cost: negative byte count");
  if (p < 1) throw std::invalid_argument("collective cost: world size must be >= 1");
  if (net.bandwidth_bps <= 0) throw std::invalid_argument("collective cost: bandwidth <= 0");
}

double log2_clamped(int p) { return p > 1 ? std::log2(static_cast<double>(p)) : 0.0; }

}  // namespace

double ring_allreduce_seconds(double bytes, int p, const Network& net) {
  require_valid(bytes, p, net);
  if (p == 1) return 0.0;
  const double latency = net.alpha_s * static_cast<double>(p - 1);
  const double bandwidth =
      2.0 * bytes * static_cast<double>(p - 1) / (static_cast<double>(p) * net.bandwidth_bps);
  return latency + bandwidth;
}

double tree_allreduce_seconds(double bytes, int p, const Network& net) {
  require_valid(bytes, p, net);
  if (p == 1) return 0.0;
  const double latency = net.alpha_s * log2_clamped(p);
  const double bandwidth =
      2.0 * bytes * static_cast<double>(p - 1) / (static_cast<double>(p) * net.bandwidth_bps);
  return latency + bandwidth;
}

double allgather_seconds(double bytes_per_rank, int p, const Network& net) {
  require_valid(bytes_per_rank, p, net);
  if (p == 1) return 0.0;
  const double latency = net.alpha_s * static_cast<double>(p - 1);
  const double incast = 1.0 + net.incast_penalty * log2_clamped(p);
  const double bandwidth =
      bytes_per_rank * static_cast<double>(p - 1) / net.bandwidth_bps * incast;
  return latency + bandwidth;
}

double reduce_scatter_seconds(double bytes, int p, const Network& net) {
  require_valid(bytes, p, net);
  if (p == 1) return 0.0;
  const double latency = net.alpha_s * static_cast<double>(p - 1);
  const double bandwidth =
      bytes * static_cast<double>(p - 1) / (static_cast<double>(p) * net.bandwidth_bps);
  return latency + bandwidth;
}

double broadcast_seconds(double bytes, int p, const Network& net) {
  require_valid(bytes, p, net);
  if (p == 1) return 0.0;
  const double hops = std::ceil(log2_clamped(p));
  return hops * (net.alpha_s + bytes / net.bandwidth_bps);
}

double send_seconds(double bytes, const Network& net) {
  require_valid(bytes, 1, net);
  return net.alpha_s + bytes / net.bandwidth_bps;
}

double parameter_server_seconds(double bytes, int p, int servers, const Network& net) {
  require_valid(bytes, p, net);
  if (servers < 1) throw std::invalid_argument("parameter_server_seconds: servers must be >= 1");
  if (p == 1) return 0.0;
  const double per_server_bytes = static_cast<double>(p) * bytes / static_cast<double>(servers);
  const double incast = 1.0 + net.incast_penalty * (p > 1 ? std::log2(static_cast<double>(p)) : 0.0);
  return 2.0 * net.alpha_s + 2.0 * per_server_bytes / net.bandwidth_bps * incast;
}

}  // namespace gradcomp::comm
