#include "comm/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace gradcomp::comm {

namespace {

void require_valid(Bytes bytes, int p, const Network& net) {
  if (bytes.value() < 0) throw std::invalid_argument("collective cost: negative byte count");
  if (p < 1) throw std::invalid_argument("collective cost: world size must be >= 1");
  if (net.bandwidth.value() <= 0)
    throw std::invalid_argument("collective cost: bandwidth <= 0");
}

double log2_clamped(int p) { return p > 1 ? std::log2(static_cast<double>(p)) : 0.0; }

// The formulas below unwrap to raw doubles so each expression keeps the
// exact shape (and bit-exact result) of the validated model; the strong
// types guard the call boundary.

}  // namespace

Seconds ring_allreduce_seconds(Bytes bytes, int p, const Network& net) {
  require_valid(bytes, p, net);
  if (p == 1) return Seconds{};
  const double latency = net.alpha.value() * static_cast<double>(p - 1);
  const double transfer = 2.0 * bytes.value() * static_cast<double>(p - 1) /
                          (static_cast<double>(p) * net.bandwidth.bytes_per_second());
  return Seconds{latency + transfer};
}

Seconds tree_allreduce_seconds(Bytes bytes, int p, const Network& net) {
  require_valid(bytes, p, net);
  if (p == 1) return Seconds{};
  const double latency = net.alpha.value() * log2_clamped(p);
  const double transfer = 2.0 * bytes.value() * static_cast<double>(p - 1) /
                          (static_cast<double>(p) * net.bandwidth.bytes_per_second());
  return Seconds{latency + transfer};
}

Seconds allgather_seconds(Bytes bytes_per_rank, int p, const Network& net) {
  require_valid(bytes_per_rank, p, net);
  if (p == 1) return Seconds{};
  const double latency = net.alpha.value() * static_cast<double>(p - 1);
  const double incast = 1.0 + net.incast_penalty * log2_clamped(p);
  const double transfer = bytes_per_rank.value() * static_cast<double>(p - 1) /
                          net.bandwidth.bytes_per_second() * incast;
  return Seconds{latency + transfer};
}

Seconds reduce_scatter_seconds(Bytes bytes, int p, const Network& net) {
  require_valid(bytes, p, net);
  if (p == 1) return Seconds{};
  const double latency = net.alpha.value() * static_cast<double>(p - 1);
  const double transfer = bytes.value() * static_cast<double>(p - 1) /
                          (static_cast<double>(p) * net.bandwidth.bytes_per_second());
  return Seconds{latency + transfer};
}

Seconds broadcast_seconds(Bytes bytes, int p, const Network& net) {
  require_valid(bytes, p, net);
  if (p == 1) return Seconds{};
  const double hops = std::ceil(log2_clamped(p));
  return Seconds{hops * (net.alpha.value() + bytes.value() / net.bandwidth.bytes_per_second())};
}

Seconds send_seconds(Bytes bytes, const Network& net) {
  require_valid(bytes, 1, net);
  return Seconds{net.alpha.value() + bytes.value() / net.bandwidth.bytes_per_second()};
}

Seconds parameter_server_seconds(Bytes bytes, int p, int servers, const Network& net) {
  require_valid(bytes, p, net);
  if (servers < 1) throw std::invalid_argument("parameter_server_seconds: servers must be >= 1");
  if (p == 1) return Seconds{};
  const double per_server_bytes =
      static_cast<double>(p) * bytes.value() / static_cast<double>(servers);
  const double incast = 1.0 + net.incast_penalty * log2_clamped(p);
  return Seconds{2.0 * net.alpha.value() +
                 2.0 * per_server_bytes / net.bandwidth.bytes_per_second() * incast};
}

}  // namespace gradcomp::comm
