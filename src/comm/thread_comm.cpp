#include "comm/thread_comm.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

namespace gradcomp::comm {

namespace {

// Chunk boundaries for splitting n elements into p near-equal parts.
std::vector<std::size_t> chunk_offsets(std::size_t n, int p) {
  std::vector<std::size_t> offsets(static_cast<std::size_t>(p) + 1, 0);
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t rem = n % static_cast<std::size_t>(p);
  for (int c = 0; c < p; ++c) {
    const std::size_t len = base + (static_cast<std::size_t>(c) < rem ? 1 : 0);
    offsets[static_cast<std::size_t>(c) + 1] = offsets[static_cast<std::size_t>(c)] + len;
  }
  return offsets;
}

int mod(int a, int p) { return ((a % p) + p) % p; }

std::string failure_message(const std::vector<int>& failed) {
  std::string msg = "RankFailure: dead rank(s)";
  for (const int r : failed) msg += ' ' + std::to_string(r);
  return msg;
}

int checked_world_size(int world_size) {
  if (world_size < 1) throw std::invalid_argument("ThreadComm: world size must be >= 1");
  return world_size;
}

}  // namespace

RankFailure::RankFailure(std::vector<int> failed)
    : std::runtime_error(failure_message(failed)), failed_(std::move(failed)) {}

ThreadComm::ThreadComm(int world_size, std::chrono::milliseconds timeout)
    : initial_world_size_(checked_world_size(world_size)),
      timeout_(timeout),
      arrived_flag_(static_cast<std::size_t>(world_size), 0),
      active_(static_cast<std::size_t>(world_size), 1),
      failed_(static_cast<std::size_t>(world_size), 0),
      active_count_(world_size),
      shrink_flag_(static_cast<std::size_t>(world_size), 0),
      grow_flag_(static_cast<std::size_t>(world_size), 0),
      rejoin_flag_(static_cast<std::size_t>(world_size), 0),
      dense_(static_cast<std::size_t>(world_size)),
      ranks_(static_cast<std::size_t>(world_size)),
      mail_(static_cast<std::size_t>(world_size)),
      byte_slots_(static_cast<std::size_t>(world_size)) {
  if (timeout.count() <= 0)
    throw std::invalid_argument("ThreadComm: timeout must be positive");
  for (int r = 0; r < world_size; ++r) {
    dense_[static_cast<std::size_t>(r)] = r;
    ranks_[static_cast<std::size_t>(r)] = r;
  }
}

void ThreadComm::set_timeout(std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0)
    throw std::invalid_argument("ThreadComm: timeout must be positive");
  const core::sync::LockGuard lock(mu_);
  timeout_ = timeout;
}

std::chrono::milliseconds ThreadComm::timeout() const {
  const core::sync::LockGuard lock(mu_);
  return timeout_;
}

void ThreadComm::validate_rank(int rank) const {
  if (rank < 0 || rank >= initial_world_size_)
    throw std::invalid_argument("ThreadComm: rank out of range");
  const core::sync::LockGuard lock(mu_);
  if (!active_[static_cast<std::size_t>(rank)])
    throw std::logic_error("ThreadComm: removed rank used the group");
}

bool ThreadComm::is_active(int rank) const {
  if (rank < 0 || rank >= initial_world_size_) return false;
  const core::sync::LockGuard lock(mu_);
  return active_[static_cast<std::size_t>(rank)] != 0 &&
         failed_[static_cast<std::size_t>(rank)] == 0;
}

std::vector<int> ThreadComm::active_ranks() const {
  const core::sync::LockGuard lock(mu_);
  std::vector<int> out;
  for (int r = 0; r < initial_world_size_; ++r)
    if (active_[static_cast<std::size_t>(r)] && !failed_[static_cast<std::size_t>(r)])
      out.push_back(r);
  return out;
}

std::vector<int> ThreadComm::failed_ranks() const {
  const core::sync::LockGuard lock(mu_);
  std::vector<int> out;
  for (int r = 0; r < initial_world_size_; ++r)
    if (failed_[static_cast<std::size_t>(r)]) out.push_back(r);
  return out;
}

void ThreadComm::throw_failure_locked() const {
  std::vector<int> failed;
  for (int r = 0; r < initial_world_size_; ++r)
    if (failed_[static_cast<std::size_t>(r)]) failed.push_back(r);
  if (failed.empty()) failed.push_back(-1);  // abort without blame — should not happen
  throw RankFailure(std::move(failed));
}

void ThreadComm::sync(int rank) {
  core::sync::UniqueLock lock(mu_);
  if (aborted_) throw_failure_locked();
  const std::uint64_t my_epoch = epoch_;
  arrived_flag_[static_cast<std::size_t>(rank)] = 1;
  ++arrived_;
  if (arrived_ == active_count_.load(std::memory_order_relaxed)) {
    arrived_ = 0;
    for (const int r : ranks_) arrived_flag_[static_cast<std::size_t>(r)] = 0;
    ++epoch_;
    cv_.notify_all();
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (epoch_ == my_epoch) {
    if (aborted_) throw_failure_locked();
    // Predicate-form wait (gradcheck conc: cv-wait-no-predicate): spurious
    // wakeups re-check inside wait_until; a false return means the deadline
    // passed with the barrier still incomplete and nobody aborted yet.
    if (!cv_.wait_until(lock, deadline, [&] {
          mu_.assert_held();  // predicate only ever runs locked
          return epoch_ != my_epoch || aborted_;
        })) {
      // Deadline passed with the barrier incomplete: blame every active rank
      // that has not arrived — it is hung or dead — and abort the collective
      // so the survivors get an error instead of waiting forever.
      for (int r = 0; r < initial_world_size_; ++r) {
        const auto u = static_cast<std::size_t>(r);
        if (active_[u] && !failed_[u] && !arrived_flag_[u]) failed_[u] = 1;
      }
      aborted_ = true;
      cv_.notify_all();
    }
  }
  // The barrier generation completed before any abort: success.
}

void ThreadComm::fail(int rank) {
  if (rank < 0 || rank >= initial_world_size_)
    throw std::invalid_argument("ThreadComm::fail: rank out of range");
  const core::sync::LockGuard lock(mu_);
  const auto u = static_cast<std::size_t>(rank);
  if (!active_[u] || failed_[u]) return;  // already dead
  failed_[u] = 1;
  aborted_ = true;
  cv_.notify_all();
}

void ThreadComm::rebuild_dense_locked() {
  // Size for the worst case first: a grow() re-expands the group, and the
  // dense->original table must be able to hold every readmitted rank before
  // the loop assigns (it is trimmed back down below).
  ranks_.resize(static_cast<std::size_t>(initial_world_size_));
  int d = 0;
  for (int r = 0; r < initial_world_size_; ++r) {
    const auto u = static_cast<std::size_t>(r);
    if (active_[u]) {
      dense_[u] = d;
      ranks_[static_cast<std::size_t>(d)] = r;
      ++d;
    } else {
      dense_[u] = -1;
    }
  }
  ranks_.resize(static_cast<std::size_t>(d));
  active_count_.store(d, std::memory_order_relaxed);
}

int ThreadComm::live_survivors_locked() const {
  int c = 0;
  for (int r = 0; r < initial_world_size_; ++r)
    if (active_[static_cast<std::size_t>(r)] && !failed_[static_cast<std::size_t>(r)]) ++c;
  return c;
}

void ThreadComm::complete_shrink_locked() {
  shrink_removed_.clear();
  for (int r = 0; r < initial_world_size_; ++r) {
    const auto u = static_cast<std::size_t>(r);
    if (failed_[u]) {
      shrink_removed_.push_back(r);
      active_[u] = 0;
      failed_[u] = 0;
    }
  }
  rebuild_dense_locked();
  arrived_ = 0;
  std::fill(arrived_flag_.begin(), arrived_flag_.end(), 0);
  std::fill(shrink_flag_.begin(), shrink_flag_.end(), 0);
  aborted_ = false;
  shrink_arrived_ = 0;
  ++shrink_epoch_;
  cv_.notify_all();
}

std::vector<int> ThreadComm::shrink(int rank) {
  core::sync::UniqueLock lock(mu_);
  if (rank < 0 || rank >= initial_world_size_ || !active_[static_cast<std::size_t>(rank)] ||
      failed_[static_cast<std::size_t>(rank)])
    throw std::logic_error("ThreadComm::shrink: caller is not a live group member");

  const std::uint64_t my_epoch = shrink_epoch_;
  shrink_flag_[static_cast<std::size_t>(rank)] = 1;
  ++shrink_arrived_;

  if (shrink_arrived_ == live_survivors_locked()) {
    complete_shrink_locked();
    return shrink_removed_;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (shrink_epoch_ == my_epoch) {
    // Predicate-form wait: besides the epoch advancing, wake when the
    // consensus condition becomes satisfiable without us doing anything —
    // a second rank dying (double fault) via fail() while we are parked
    // here removes itself from the survivor count, and fail()'s notify
    // must let a waiter re-check completion instead of hanging until the
    // deadline. A false return means the deadline passed with the shrink
    // consensus still pending for our epoch.
    if (!cv_.wait_until(lock, deadline, [&] {
          mu_.assert_held();  // predicate only ever runs locked
          return shrink_epoch_ != my_epoch || shrink_arrived_ == live_survivors_locked();
        })) {
      // A survivor died during recovery without declaring: blame the
      // missing ones and try to complete with whoever showed up.
      for (int r = 0; r < initial_world_size_; ++r) {
        const auto u = static_cast<std::size_t>(r);
        if (active_[u] && !failed_[u] && !shrink_flag_[u]) failed_[u] = 1;
      }
      if (shrink_arrived_ == live_survivors_locked()) complete_shrink_locked();
    } else if (shrink_epoch_ == my_epoch && shrink_arrived_ == live_survivors_locked()) {
      // Double fault: the newly-dead rank will never enter shrink(), so the
      // ranks that did arrive are now the whole consensus — reap both
      // casualties in this round.
      complete_shrink_locked();
    }
  }
  return shrink_removed_;
}

bool ThreadComm::grow_ready_locked() const {
  if (grow_expected_.empty() || grow_aborted_) return false;
  if (grow_arrived_ != live_survivors_locked()) return false;
  for (const int j : grow_expected_)
    if (!rejoin_flag_[static_cast<std::size_t>(j)]) return false;
  return true;
}

void ThreadComm::complete_grow_locked() {
  for (const int j : grow_expected_) {
    const auto u = static_cast<std::size_t>(j);
    active_[u] = 1;
    failed_[u] = 0;
    rejoin_flag_[u] = 0;
    // Drop any traffic addressed to this rank id in a past life: the joiner
    // must only ever observe messages from its new generation.
    mail_[u].clear();
    byte_slots_[u].clear();
  }
  rebuild_dense_locked();
  arrived_ = 0;
  std::fill(arrived_flag_.begin(), arrived_flag_.end(), 0);
  std::fill(grow_flag_.begin(), grow_flag_.end(), 0);
  grow_arrived_ = 0;
  grow_expected_.clear();
  // A rank that died mid-round stays blamed; otherwise the group is clean.
  bool any_failed = false;
  for (int r = 0; r < initial_world_size_; ++r)
    if (failed_[static_cast<std::size_t>(r)]) any_failed = true;
  aborted_ = any_failed;
  grow_result_.clear();
  for (const int r : ranks_) grow_result_.push_back(r);
  ++grow_epoch_;
  cv_.notify_all();
}

void ThreadComm::abort_grow_locked() {
  // The round cannot complete: the survivors that never entered grow() are
  // hung or dead — blame them so collectives surface the failure. Missing
  // joiners are simply not admitted.
  for (int r = 0; r < initial_world_size_; ++r) {
    const auto u = static_cast<std::size_t>(r);
    if (active_[u] && !failed_[u] && !grow_flag_[u]) {
      failed_[u] = 1;
      aborted_ = true;
    }
  }
  grow_aborted_ = true;
  cv_.notify_all();
}

void ThreadComm::throw_grow_abort_locked() const {
  for (int r = 0; r < initial_world_size_; ++r)
    if (failed_[static_cast<std::size_t>(r)]) throw_failure_locked();
  throw std::logic_error("ThreadComm: grow/rejoin round aborted (joiner set mismatch)");
}

std::vector<int> ThreadComm::grow(int rank, std::span<const int> joiners) {
  core::sync::UniqueLock lock(mu_);
  if (rank < 0 || rank >= initial_world_size_ || !active_[static_cast<std::size_t>(rank)] ||
      failed_[static_cast<std::size_t>(rank)])
    throw std::logic_error("ThreadComm::grow: caller is not a live group member");
  if (grow_flag_[static_cast<std::size_t>(rank)])
    throw std::logic_error("ThreadComm::grow: re-entered by the same rank");

  std::vector<int> want(joiners.begin(), joiners.end());
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());
  if (want.empty()) throw std::invalid_argument("ThreadComm::grow: empty joiner set");
  for (const int j : want) {
    if (j < 0 || j >= initial_world_size_)
      throw std::invalid_argument("ThreadComm::grow: joiner rank out of range");
    if (active_[static_cast<std::size_t>(j)])
      throw std::logic_error(
          "ThreadComm::grow: joiner " + std::to_string(j) +
          " is still a group member (a dead rank must be reaped by shrink() first)");
  }
  if (grow_expected_.empty()) {
    grow_expected_ = want;
    grow_aborted_ = false;  // a fresh round supersedes a past aborted one
  } else if (grow_expected_ != want) {
    // SPMD misuse: survivors disagree on who is joining. Abort the round so
    // every participant unwinds instead of deadlocking on a set nobody
    // satisfies.
    grow_aborted_ = true;
    cv_.notify_all();
    throw std::logic_error("ThreadComm::grow: joiner set mismatch across survivors");
  }
  grow_flag_[static_cast<std::size_t>(rank)] = 1;
  ++grow_arrived_;

  const std::uint64_t my_epoch = grow_epoch_;
  if (grow_ready_locked()) {
    complete_grow_locked();
    return grow_result_;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (grow_epoch_ == my_epoch) {
    if (grow_aborted_) {
      grow_flag_[static_cast<std::size_t>(rank)] = 0;
      --grow_arrived_;
      if (grow_arrived_ == 0) grow_expected_.clear();
      throw_grow_abort_locked();
    }
    // Predicate-form wait: wake on round completion, abort, or the consensus
    // becoming satisfiable (e.g. a straggling survivor died via fail() while
    // we were parked — its notify must trigger a re-check, not a hang).
    if (!cv_.wait_until(lock, deadline, [&] {
          mu_.assert_held();  // predicate only ever runs locked
          return grow_epoch_ != my_epoch || grow_aborted_ || grow_ready_locked();
        })) {
      abort_grow_locked();
    } else if (grow_epoch_ == my_epoch && !grow_aborted_ && grow_ready_locked()) {
      complete_grow_locked();
    }
  }
  return grow_result_;
}

std::vector<int> ThreadComm::rejoin(int rank) {
  core::sync::UniqueLock lock(mu_);
  if (rank < 0 || rank >= initial_world_size_)
    throw std::invalid_argument("ThreadComm::rejoin: rank out of range");
  const auto u = static_cast<std::size_t>(rank);
  if (active_[u])
    throw std::logic_error("ThreadComm::rejoin: rank is still a group member");
  if (rejoin_flag_[u]) throw std::logic_error("ThreadComm::rejoin: re-entered by the same rank");
  rejoin_flag_[u] = 1;

  const std::uint64_t my_epoch = grow_epoch_;
  if (grow_ready_locked()) {
    complete_grow_locked();
    return grow_result_;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (grow_epoch_ == my_epoch) {
    if (grow_aborted_) {
      rejoin_flag_[u] = 0;
      throw_grow_abort_locked();
    }
    if (!cv_.wait_until(lock, deadline, [&] {
          mu_.assert_held();  // predicate only ever runs locked
          return grow_epoch_ != my_epoch || grow_aborted_ || grow_ready_locked();
        })) {
      // The survivors never (all) called grow(): the joiner cannot be
      // admitted. Blame the absentees and unwind.
      abort_grow_locked();
    } else if (grow_epoch_ == my_epoch && !grow_aborted_ && grow_ready_locked()) {
      complete_grow_locked();
    }
  }
  if (!active_[u]) {
    // The round completed but this rank was not in the survivors' expected
    // joiner set.
    rejoin_flag_[u] = 0;
    throw std::logic_error("ThreadComm::rejoin: the group did not expect this rank");
  }
  return grow_result_;
}

void ThreadComm::barrier(int rank) {
  validate_rank(rank);
  sync(rank);
}

void ThreadComm::allreduce_sum(int rank, std::span<float> data, Algorithm algorithm) {
  validate_rank(rank);
  const int p = active_count_.load(std::memory_order_relaxed);
  const int me = dense_[static_cast<std::size_t>(rank)];
  if (p == 1) {
    ++allreduce_ops_;
    return;
  }
  if (algorithm == Algorithm::kTree) {
    allreduce_tree(rank, data);
  } else {
    allreduce_ring(rank, data);
  }
  if (me == 0) ++allreduce_ops_;
  sync(rank);
}

void ThreadComm::allreduce_ring(int rank, std::span<float> data) {
  const int p = active_count_.load(std::memory_order_relaxed);
  const int me = dense_[static_cast<std::size_t>(rank)];
  const auto offsets = chunk_offsets(data.size(), p);
  const auto chunk = [&](int c) {
    const std::size_t lo = offsets[static_cast<std::size_t>(c)];
    const std::size_t hi = offsets[static_cast<std::size_t>(c) + 1];
    return data.subspan(lo, hi - lo);
  };
  const int next = ranks_[static_cast<std::size_t>(mod(me + 1, p))];

  // Phase 1: ring reduce-scatter. After p-1 steps dense rank r owns the
  // fully reduced chunk (r+1) mod p.
  for (int s = 0; s < p - 1; ++s) {
    const int send_c = mod(me - s, p);
    const int recv_c = mod(me - s - 1, p);
    auto out = chunk(send_c);
    mail_[static_cast<std::size_t>(next)].assign(out.begin(), out.end());
    sync(rank);
    const auto& in = mail_[static_cast<std::size_t>(rank)];
    auto acc = chunk(recv_c);
    if (in.size() != acc.size()) throw std::logic_error("allreduce_sum: chunk size mismatch");
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
    sync(rank);
  }

  // Phase 2: ring all-gather of the reduced chunks.
  for (int s = 0; s < p - 1; ++s) {
    const int send_c = mod(me + 1 - s, p);
    const int recv_c = mod(me - s, p);
    auto out = chunk(send_c);
    mail_[static_cast<std::size_t>(next)].assign(out.begin(), out.end());
    sync(rank);
    const auto& in = mail_[static_cast<std::size_t>(rank)];
    auto dst = chunk(recv_c);
    if (in.size() != dst.size()) throw std::logic_error("allreduce_sum: chunk size mismatch");
    std::copy(in.begin(), in.end(), dst.begin());
    sync(rank);
  }
}

void ThreadComm::allreduce_tree(int rank, std::span<float> data) {
  const int p = active_count_.load(std::memory_order_relaxed);
  const int me = dense_[static_cast<std::size_t>(rank)];
  int rounds = 0;
  while ((1 << rounds) < p) ++rounds;

  // Binomial reduce toward dense rank 0: in round k, dense rank r with bit k
  // set (and lower bits clear) sends its partial sum to r - 2^k.
  for (int k = 0; k < rounds; ++k) {
    const int stride = 1 << k;
    const int group = stride << 1;
    const bool sender = me % group == stride;
    const bool receiver = me % group == 0 && me + stride < p;
    if (sender) {
      const int peer = ranks_[static_cast<std::size_t>(me - stride)];
      mail_[static_cast<std::size_t>(peer)].assign(data.begin(), data.end());
    }
    sync(rank);
    if (receiver) {
      const auto& in = mail_[static_cast<std::size_t>(rank)];
      if (in.size() != data.size())
        throw std::logic_error("allreduce_tree: message size mismatch");
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += in[i];
    }
    sync(rank);
  }

  // Binomial broadcast from dense rank 0, mirroring the reduce.
  for (int k = rounds - 1; k >= 0; --k) {
    const int stride = 1 << k;
    const int group = stride << 1;
    const bool sender = me % group == 0 && me + stride < p;
    const bool receiver = me % group == stride;
    if (sender) {
      const int peer = ranks_[static_cast<std::size_t>(me + stride)];
      mail_[static_cast<std::size_t>(peer)].assign(data.begin(), data.end());
    }
    sync(rank);
    if (receiver) {
      const auto& in = mail_[static_cast<std::size_t>(rank)];
      if (in.size() != data.size())
        throw std::logic_error("allreduce_tree: message size mismatch");
      std::copy(in.begin(), in.end(), data.begin());
    }
    sync(rank);
  }
}

std::vector<std::vector<std::byte>> ThreadComm::allgather(int rank,
                                                          std::span<const std::byte> bytes) {
  validate_rank(rank);
  const int p = active_count_.load(std::memory_order_relaxed);
  byte_slots_[static_cast<std::size_t>(rank)].assign(bytes.begin(), bytes.end());
  if (p > 1) sync(rank);
  std::vector<std::vector<std::byte>> result;
  result.reserve(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d)
    result.push_back(byte_slots_[static_cast<std::size_t>(ranks_[static_cast<std::size_t>(d)])]);
  if (p > 1) sync(rank);
  return result;
}

void ThreadComm::allgather_ring(int rank, std::span<const float> mine, std::span<float> out) {
  validate_rank(rank);
  const int p = active_count_.load(std::memory_order_relaxed);
  const int me = dense_[static_cast<std::size_t>(rank)];
  const std::size_t block = mine.size();
  if (out.size() != block * static_cast<std::size_t>(p))
    throw std::invalid_argument("allgather_ring: output must hold world_size blocks");

  // Place own block, then forward the block received last step for p-1 steps.
  std::copy(mine.begin(), mine.end(),
            out.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(me) * block));
  if (p == 1) return;
  const int next = ranks_[static_cast<std::size_t>(mod(me + 1, p))];
  for (int s = 0; s < p - 1; ++s) {
    // In step s, dense rank r sends the block of dense rank (r - s) mod p and
    // receives the block of (r - s - 1) mod p from its predecessor.
    const int send_owner = mod(me - s, p);
    const int recv_owner = mod(me - s - 1, p);
    const auto send_at = out.subspan(static_cast<std::size_t>(send_owner) * block, block);
    mail_[static_cast<std::size_t>(next)].assign(send_at.begin(), send_at.end());
    sync(rank);
    const auto& in = mail_[static_cast<std::size_t>(rank)];
    if (in.size() != block) throw std::logic_error("allgather_ring: block size mismatch");
    std::copy(in.begin(), in.end(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(recv_owner) * block));
    sync(rank);
  }
}

std::vector<std::vector<float>> ThreadComm::allgather_floats(int rank,
                                                             std::span<const float> values) {
  const auto as_bytes = std::as_bytes(values);
  auto gathered = allgather(rank, as_bytes);
  std::vector<std::vector<float>> result(gathered.size());
  for (std::size_t r = 0; r < gathered.size(); ++r) {
    const std::size_t n = gathered[r].size() / sizeof(float);
    result[r].resize(n);
    if (n > 0) std::memcpy(result[r].data(), gathered[r].data(), n * sizeof(float));
  }
  return result;
}

void ThreadComm::broadcast(int rank, int root, std::span<float> data) {
  validate_rank(rank);
  validate_rank(root);
  if (active_count_.load(std::memory_order_relaxed) == 1) return;
  if (rank == root) {
    broadcast_src_ = data.data();
    broadcast_len_ = data.size();
  }
  sync(rank);
  if (rank != root) {
    if (broadcast_len_ != data.size()) throw std::invalid_argument("broadcast: size mismatch");
    std::copy(broadcast_src_, broadcast_src_ + broadcast_len_, data.begin());
  }
  sync(rank);
}

void ThreadComm::broadcast_bytes(int rank, int root, std::vector<std::byte>& data) {
  validate_rank(rank);
  validate_rank(root);
  if (active_count_.load(std::memory_order_relaxed) == 1) return;
  if (rank == root) byte_broadcast_src_ = &data;
  sync(rank);
  if (rank != root) data = *byte_broadcast_src_;
  sync(rank);
}

void run_ranks(int world_size, const std::function<void(int)>& body) {
  if (world_size < 1) throw std::invalid_argument("run_ranks: world size must be >= 1");
  std::vector<int> ranks(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) ranks[static_cast<std::size_t>(r)] = r;
  run_ranks(ranks, body);
}

void run_ranks(std::span<const int> ranks, const std::function<void(int)>& body) {
  if (ranks.empty()) throw std::invalid_argument("run_ranks: no ranks to run");
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(ranks.size());
  threads.reserve(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const int r = ranks[i];
    threads.emplace_back([&, r, i] {
      try {
        body(r);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
}

}  // namespace gradcomp::comm
