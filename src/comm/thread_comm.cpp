#include "comm/thread_comm.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

namespace gradcomp::comm {

namespace {

// Chunk boundaries for splitting n elements into p near-equal parts.
std::vector<std::size_t> chunk_offsets(std::size_t n, int p) {
  std::vector<std::size_t> offsets(static_cast<std::size_t>(p) + 1, 0);
  const std::size_t base = n / static_cast<std::size_t>(p);
  const std::size_t rem = n % static_cast<std::size_t>(p);
  for (int c = 0; c < p; ++c) {
    const std::size_t len = base + (static_cast<std::size_t>(c) < rem ? 1 : 0);
    offsets[static_cast<std::size_t>(c) + 1] = offsets[static_cast<std::size_t>(c)] + len;
  }
  return offsets;
}

int mod(int a, int p) { return ((a % p) + p) % p; }

}  // namespace

namespace {

// Validated before std::barrier construction, whose behaviour is undefined
// for negative counts.
int checked_world_size(int world_size) {
  if (world_size < 1) throw std::invalid_argument("ThreadComm: world size must be >= 1");
  return world_size;
}

}  // namespace

ThreadComm::ThreadComm(int world_size)
    : world_size_(checked_world_size(world_size)),
      barrier_(world_size_),
      mail_(static_cast<std::size_t>(world_size_)),
      byte_slots_(static_cast<std::size_t>(world_size_)) {}

void ThreadComm::validate_rank(int rank) const {
  if (rank < 0 || rank >= world_size_)
    throw std::invalid_argument("ThreadComm: rank out of range");
}

void ThreadComm::barrier() { barrier_.arrive_and_wait(); }

void ThreadComm::allreduce_sum(int rank, std::span<float> data, Algorithm algorithm) {
  validate_rank(rank);
  if (world_size_ == 1) {
    if (rank == 0) ++allreduce_ops_;
    return;
  }
  if (algorithm == Algorithm::kTree) {
    allreduce_tree(rank, data);
  } else {
    allreduce_ring(rank, data);
  }
  if (rank == 0) ++allreduce_ops_;
  barrier();
}

void ThreadComm::allreduce_ring(int rank, std::span<float> data) {
  const int p = world_size_;
  const auto offsets = chunk_offsets(data.size(), p);
  const auto chunk = [&](int c) {
    const std::size_t lo = offsets[static_cast<std::size_t>(c)];
    const std::size_t hi = offsets[static_cast<std::size_t>(c) + 1];
    return data.subspan(lo, hi - lo);
  };
  const int next = mod(rank + 1, p);

  // Phase 1: ring reduce-scatter. After p-1 steps rank r owns the fully
  // reduced chunk (r+1) mod p.
  for (int s = 0; s < p - 1; ++s) {
    const int send_c = mod(rank - s, p);
    const int recv_c = mod(rank - s - 1, p);
    auto out = chunk(send_c);
    mail_[static_cast<std::size_t>(next)].assign(out.begin(), out.end());
    barrier();
    const auto& in = mail_[static_cast<std::size_t>(rank)];
    auto acc = chunk(recv_c);
    if (in.size() != acc.size()) throw std::logic_error("allreduce_sum: chunk size mismatch");
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
    barrier();
  }

  // Phase 2: ring all-gather of the reduced chunks.
  for (int s = 0; s < p - 1; ++s) {
    const int send_c = mod(rank + 1 - s, p);
    const int recv_c = mod(rank - s, p);
    auto out = chunk(send_c);
    mail_[static_cast<std::size_t>(next)].assign(out.begin(), out.end());
    barrier();
    const auto& in = mail_[static_cast<std::size_t>(rank)];
    auto dst = chunk(recv_c);
    if (in.size() != dst.size()) throw std::logic_error("allreduce_sum: chunk size mismatch");
    std::copy(in.begin(), in.end(), dst.begin());
    barrier();
  }
}

void ThreadComm::allreduce_tree(int rank, std::span<float> data) {
  const int p = world_size_;
  int rounds = 0;
  while ((1 << rounds) < p) ++rounds;

  // Binomial reduce toward rank 0: in round k, rank r with bit k set (and
  // lower bits clear) sends its partial sum to r - 2^k.
  for (int k = 0; k < rounds; ++k) {
    const int stride = 1 << k;
    const int group = stride << 1;
    const bool sender = rank % group == stride;
    const bool receiver = rank % group == 0 && rank + stride < p;
    if (sender) mail_[static_cast<std::size_t>(rank - stride)].assign(data.begin(), data.end());
    barrier();
    if (receiver) {
      const auto& in = mail_[static_cast<std::size_t>(rank)];
      if (in.size() != data.size())
        throw std::logic_error("allreduce_tree: message size mismatch");
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += in[i];
    }
    barrier();
  }

  // Binomial broadcast from rank 0, mirroring the reduce.
  for (int k = rounds - 1; k >= 0; --k) {
    const int stride = 1 << k;
    const int group = stride << 1;
    const bool sender = rank % group == 0 && rank + stride < p;
    const bool receiver = rank % group == stride;
    if (sender) mail_[static_cast<std::size_t>(rank + stride)].assign(data.begin(), data.end());
    barrier();
    if (receiver) {
      const auto& in = mail_[static_cast<std::size_t>(rank)];
      if (in.size() != data.size())
        throw std::logic_error("allreduce_tree: message size mismatch");
      std::copy(in.begin(), in.end(), data.begin());
    }
    barrier();
  }
}

std::vector<std::vector<std::byte>> ThreadComm::allgather(int rank,
                                                          std::span<const std::byte> bytes) {
  validate_rank(rank);
  byte_slots_[static_cast<std::size_t>(rank)].assign(bytes.begin(), bytes.end());
  barrier();
  std::vector<std::vector<std::byte>> result = byte_slots_;
  barrier();
  return result;
}

void ThreadComm::allgather_ring(int rank, std::span<const float> mine, std::span<float> out) {
  validate_rank(rank);
  const int p = world_size_;
  const std::size_t block = mine.size();
  if (out.size() != block * static_cast<std::size_t>(p))
    throw std::invalid_argument("allgather_ring: output must hold world_size blocks");

  // Place own block, then forward the block received last step for p-1 steps.
  std::copy(mine.begin(), mine.end(), out.begin() + static_cast<std::ptrdiff_t>(
                                                        static_cast<std::size_t>(rank) * block));
  if (p == 1) return;
  const int next = mod(rank + 1, p);
  for (int s = 0; s < p - 1; ++s) {
    // In step s, rank r sends the block of rank (r - s) mod p and receives
    // the block of rank (r - s - 1) mod p from its predecessor.
    const int send_owner = mod(rank - s, p);
    const int recv_owner = mod(rank - s - 1, p);
    const auto send_at = out.subspan(static_cast<std::size_t>(send_owner) * block, block);
    mail_[static_cast<std::size_t>(next)].assign(send_at.begin(), send_at.end());
    barrier();
    const auto& in = mail_[static_cast<std::size_t>(rank)];
    if (in.size() != block) throw std::logic_error("allgather_ring: block size mismatch");
    std::copy(in.begin(), in.end(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(recv_owner) * block));
    barrier();
  }
}

std::vector<std::vector<float>> ThreadComm::allgather_floats(int rank,
                                                             std::span<const float> values) {
  const auto as_bytes = std::as_bytes(values);
  auto gathered = allgather(rank, as_bytes);
  std::vector<std::vector<float>> result(gathered.size());
  for (std::size_t r = 0; r < gathered.size(); ++r) {
    const std::size_t n = gathered[r].size() / sizeof(float);
    result[r].resize(n);
    if (n > 0) std::memcpy(result[r].data(), gathered[r].data(), n * sizeof(float));
  }
  return result;
}

void ThreadComm::broadcast(int rank, int root, std::span<float> data) {
  validate_rank(rank);
  validate_rank(root);
  if (rank == root) {
    broadcast_src_ = data.data();
    broadcast_len_ = data.size();
  }
  barrier();
  if (rank != root) {
    if (broadcast_len_ != data.size()) throw std::invalid_argument("broadcast: size mismatch");
    std::copy(broadcast_src_, broadcast_src_ + broadcast_len_, data.begin());
  }
  barrier();
}

void run_ranks(int world_size, const std::function<void(int)>& body) {
  if (world_size < 1) throw std::invalid_argument("run_ranks: world size must be >= 1");
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(world_size));
  threads.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&, r] {
      try {
        body(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
}

}  // namespace gradcomp::comm
