// Timeline invariant verifier — the runtime half of the contract the
// gradcheck static passes gate from the source side.
//
// The paper's claims are timing-model claims: every figure is ultimately a
// sum over Timeline spans, so a span that runs backwards, two all-reduces
// overlapping on one serialized stream, or busy time that disagrees with the
// simulator's own accounting silently corrupts the end-to-end utility
// numbers. validate() checks a produced timeline against the structural
// invariants every producer (sim::ClusterSim, sim::run_adaptive,
// train::DataParallelTrainer) promises:
//
//   * spans are finite, non-negative, and monotone (end >= start >= 0);
//   * execution lanes ("compute", "comm", "encode", "decode") never overlap
//     themselves — they model serialized streams; annotation lanes ("fault",
//     "adapt") are exempt because they mark conditions, not occupancy;
//   * no span escapes the stated horizon (the iteration / run makespan);
//   * per-lane busy time conserves against the producer's scalar accounting
//     (SimResult::compute/comm/encode/decode) within float tolerance;
//   * designated lanes tile [0, horizon] gap-free (the adaptive controller's
//     decision windows);
//   * spans on windowed lanes fall inside their allowed windows (fault spans
//     inside the FaultPlan-derived iteration window), with an optional exact
//     span count.
//
// Producers run it behind a debug flag (SimOptions::validate_timeline);
// tests assert it unconditionally.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "trace/timeline.hpp"

namespace gradcomp::trace {

struct Violation {
  std::string check;   // e.g. "span-order", "lane-overlap", "conservation"
  std::string detail;  // human-readable description with lane/label/times
};

struct Interval {
  Seconds start;
  Seconds end;
};

struct ValidateOptions {
  // Lanes carrying annotations (fault markers, decision windows) rather than
  // exclusive stream occupancy; exempt from the intra-lane overlap check.
  std::vector<std::string> annotation_lanes{"fault", "adapt"};
  // When >= 0, every span must end by `horizon` (within tolerance).
  Seconds horizon{-1.0};
  // Expected total busy time per lane (overlap-merged, like
  // Timeline::stream_busy); lanes not listed are unchecked.
  std::vector<std::pair<std::string, Seconds>> expected_busy;
  // Lanes that must cover [0, horizon] with no gaps; requires horizon >= 0.
  std::vector<std::string> gap_free_lanes;
  // Per-lane allowed windows: every span on the lane must be contained in at
  // least one window.
  std::vector<std::pair<std::string, std::vector<Interval>>> lane_windows;
  // Exact expected span count per lane; lanes not listed are unchecked.
  std::vector<std::pair<std::string, int>> expected_span_count;
  // Absolute slack for all comparisons; conservation additionally allows
  // 1e-9 relative slack (span endpoints are sums of jittered doubles).
  double tolerance_seconds = 1e-9;
};

// Returns every invariant violation found (empty == clean).
[[nodiscard]] std::vector<Violation> validate(const Timeline& timeline,
                                              const ValidateOptions& options = {});

// One-line-per-violation rendering, for error messages and logs.
[[nodiscard]] std::string describe(const std::vector<Violation>& violations);

// Throws std::logic_error carrying describe() when validate() is non-empty;
// `context` names the producer (e.g. "ClusterSim::run_compressed").
void validate_or_throw(const Timeline& timeline, const ValidateOptions& options = {},
                       const std::string& context = {});

}  // namespace gradcomp::trace
