#include "trace/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace gradcomp::trace {

void Timeline::add(std::string stream, std::string label, Seconds start, Seconds end) {
  if (end < start) throw std::invalid_argument("Timeline::add: end before start");
  spans_.push_back(Span{std::move(stream), std::move(label), start, end});
}

Seconds Timeline::makespan() const noexcept {
  double m = 0.0;
  for (const auto& s : spans_) m = std::max(m, s.end.value());
  return Seconds{m};
}

Seconds Timeline::stream_busy(const std::string& stream) const {
  // Merge overlapping spans on the stream before summing.
  std::vector<std::pair<double, double>> intervals;
  for (const auto& s : spans_)
    if (s.stream == stream) intervals.emplace_back(s.start.value(), s.end.value());
  std::sort(intervals.begin(), intervals.end());
  double busy = 0.0;
  double cur_start = 0.0;
  double cur_end = -1.0;
  for (const auto& [a, b] : intervals) {
    if (cur_end < 0 || a > cur_end) {
      if (cur_end >= 0) busy += cur_end - cur_start;
      cur_start = a;
      cur_end = b;
    } else {
      cur_end = std::max(cur_end, b);
    }
  }
  if (cur_end >= 0) busy += cur_end - cur_start;
  return Seconds{busy};
}

std::vector<Span> Timeline::spans_on(const std::string& stream) const {
  std::vector<Span> out;
  for (const auto& s : spans_)
    if (s.stream == stream) out.push_back(s);
  return out;
}

std::vector<std::string> Timeline::streams() const {
  std::vector<std::string> names;
  for (const auto& s : spans_)
    if (std::find(names.begin(), names.end(), s.stream) == names.end())
      names.push_back(s.stream);
  return names;
}

void Timeline::render_ascii(std::ostream& os, int width) const {
  const double total = makespan().value();
  if (total <= 0 || width <= 0) {
    os << "(empty timeline)\n";
    return;
  }
  std::size_t name_w = 0;
  for (const auto& name : streams()) name_w = std::max(name_w, name.size());

  for (const auto& name : streams()) {
    std::string row(static_cast<std::size_t>(width), '.');
    for (const auto& s : spans_) {
      if (s.stream != name) continue;
      auto lo = static_cast<int>(std::floor(s.start.value() / total * width));
      auto hi = static_cast<int>(std::ceil(s.end.value() / total * width));
      lo = std::clamp(lo, 0, width);
      hi = std::clamp(hi, lo, width);
      for (int i = lo; i < hi; ++i) row[static_cast<std::size_t>(i)] = '#';
    }
    os << std::left << std::setw(static_cast<int>(name_w)) << name << " |" << row << "|\n";
  }
  os << std::left << std::setw(static_cast<int>(name_w)) << "" << "  0" << std::right
     << std::setw(width - 1) << Seconds{total}.ms() << " ms\n";
}

namespace {

// Minimal JSON string escaping for span labels and stream names.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Fixed-point microseconds: trace viewers want plain numbers, and a stable
// format keeps the golden test byte-exact across platforms.
std::string json_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

}  // namespace

void Timeline::render_chrome_json(std::ostream& os) const {
  const auto names = streams();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t tid = 0; tid < names.size(); ++tid) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json_escape(names[tid]) << "\"}}";
  }
  for (const auto& s : spans_) {
    const auto tid =
        static_cast<std::size_t>(std::find(names.begin(), names.end(), s.stream) -
                                 names.begin());
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"" << json_escape(s.label) << "\",\"cat\":\""
       << json_escape(s.stream) << "\",\"ph\":\"X\",\"ts\":" << json_us(s.start.value())
       << ",\"dur\":" << json_us(s.duration().value()) << ",\"pid\":0,\"tid\":" << tid << '}';
  }
  os << "\n]}\n";
}

void Timeline::render_csv(std::ostream& os) const {
  os << "csv,stream,label,start_ms,end_ms\n";
  for (const auto& s : spans_)
    os << "csv," << s.stream << ',' << s.label << ',' << s.start.ms() << ',' << s.end.ms()
       << '\n';
}

}  // namespace gradcomp::trace
