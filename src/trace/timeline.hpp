// Span-based execution timeline, our stand-in for the NVIDIA Nsight traces
// the paper uses (Figure 2) to show gradient communication proceeding on a
// separate CUDA stream, overlapped with the backward pass.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/units.hpp"

namespace gradcomp::trace {

using core::units::Seconds;

struct Span {
  std::string stream;  // e.g. "compute", "comm", "encode"
  std::string label;   // e.g. "bucket 3 allreduce"
  Seconds start;
  Seconds end;

  [[nodiscard]] Seconds duration() const { return end - start; }
};

class Timeline {
 public:
  // Adds a span; throws std::invalid_argument if end < start.
  void add(std::string stream, std::string label, Seconds start, Seconds end);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept { return spans_; }
  [[nodiscard]] bool empty() const noexcept { return spans_.empty(); }
  // Latest end time across all spans (0 when empty).
  [[nodiscard]] Seconds makespan() const noexcept;
  // Total busy time on one stream.
  [[nodiscard]] Seconds stream_busy(const std::string& stream) const;
  // All spans on one stream, in insertion order (e.g. the "fault" stream the
  // simulator records injected fault events on).
  [[nodiscard]] std::vector<Span> spans_on(const std::string& stream) const;
  // Distinct stream names in first-appearance order.
  [[nodiscard]] std::vector<std::string> streams() const;

  // ASCII Gantt chart: one row per stream, `width` characters across the
  // makespan, '#' where any span on that stream is active.
  void render_ascii(std::ostream& os, int width = 100) const;
  // "csv,stream,label,start_ms,end_ms" rows.
  void render_csv(std::ostream& os) const;
  // Chrome trace-event JSON (load in about://tracing or ui.perfetto.dev):
  // one complete ("X") event per span with timestamps in microseconds, each
  // stream mapped to its own named thread row.
  void render_chrome_json(std::ostream& os) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace gradcomp::trace
