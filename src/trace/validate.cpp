#include "trace/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gradcomp::trace {

namespace {

std::string fmt_ms(Seconds s) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f ms", s.ms());
  return buf;
}

bool contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

// Spans of one lane sorted by (start, end); pointers into the timeline.
std::vector<const Span*> lane_sorted(const Timeline& timeline, const std::string& lane) {
  std::vector<const Span*> out;
  for (const auto& s : timeline.spans())
    if (s.stream == lane) out.push_back(&s);
  std::sort(out.begin(), out.end(), [](const Span* a, const Span* b) {
    if (a->start != b->start) return a->start < b->start;
    return a->end < b->end;
  });
  return out;
}

}  // namespace

std::vector<Violation> validate(const Timeline& timeline, const ValidateOptions& options) {
  std::vector<Violation> out;
  const double tol = options.tolerance_seconds;

  // --- Per-span sanity: finite, non-negative, monotone. ---------------------
  for (const auto& s : timeline.spans()) {
    if (!std::isfinite(s.start.value()) || !std::isfinite(s.end.value())) {
      out.push_back({"span-finite", "lane '" + s.stream + "' span '" + s.label +
                                        "' has a non-finite endpoint"});
      continue;
    }
    if (s.start.value() < -tol)
      out.push_back({"span-order", "lane '" + s.stream + "' span '" + s.label +
                                       "' starts before t=0 (" + fmt_ms(s.start) + ")"});
    if (s.end.value() < s.start.value() - tol)
      out.push_back({"span-order", "lane '" + s.stream + "' span '" + s.label +
                                       "' ends (" + fmt_ms(s.end) + ") before it starts (" +
                                       fmt_ms(s.start) + ")"});
    if (options.horizon >= Seconds{} && s.end.value() > options.horizon.value() + tol)
      out.push_back({"horizon", "lane '" + s.stream + "' span '" + s.label + "' ends (" +
                                    fmt_ms(s.end) + ") past the horizon (" +
                                    fmt_ms(options.horizon) + ")"});
  }

  // --- Intra-lane overlap on execution lanes. -------------------------------
  for (const auto& lane : timeline.streams()) {
    if (contains(options.annotation_lanes, lane)) continue;
    const auto spans = lane_sorted(timeline, lane);
    for (std::size_t i = 1; i < spans.size(); ++i) {
      const Span* prev = spans[i - 1];
      const Span* cur = spans[i];
      if (cur->start.value() < prev->end.value() - tol)
        out.push_back({"lane-overlap", "lane '" + lane + "': '" + cur->label + "' starts (" +
                                           fmt_ms(cur->start) + ") before '" + prev->label +
                                           "' ends (" + fmt_ms(prev->end) + ")"});
    }
  }

  // --- Busy-time conservation. ----------------------------------------------
  for (const auto& [lane, expected] : options.expected_busy) {
    const Seconds busy = timeline.stream_busy(lane);
    const double slack = tol + 1e-9 * std::abs(expected.value());
    if (std::abs(busy.value() - expected.value()) > slack)
      out.push_back({"conservation", "lane '" + lane + "' busy time " + fmt_ms(busy) +
                                         " != expected " + fmt_ms(expected)});
  }

  // --- Gap-free coverage of [0, horizon]. -----------------------------------
  for (const auto& lane : options.gap_free_lanes) {
    if (options.horizon < Seconds{}) {
      out.push_back({"gap-free", "lane '" + lane + "' requires a horizon to check coverage"});
      continue;
    }
    const auto spans = lane_sorted(timeline, lane);
    if (spans.empty()) {
      if (options.horizon.value() > tol)
        out.push_back({"gap-free", "lane '" + lane + "' is empty but the horizon is " +
                                       fmt_ms(options.horizon)});
      continue;
    }
    if (spans.front()->start.value() > tol)
      out.push_back({"gap-free", "lane '" + lane + "' starts at " +
                                     fmt_ms(spans.front()->start) + ", not t=0"});
    double covered = spans.front()->end.value();
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i]->start.value() > covered + tol)
        out.push_back({"gap-free", "lane '" + lane + "' has a gap before '" +
                                       spans[i]->label + "' (covered to " +
                                       fmt_ms(Seconds{covered}) + ", next starts " +
                                       fmt_ms(spans[i]->start) + ")"});
      covered = std::max(covered, spans[i]->end.value());
    }
    if (covered < options.horizon.value() - tol)
      out.push_back({"gap-free", "lane '" + lane + "' covers only to " +
                                     fmt_ms(Seconds{covered}) + " of horizon " +
                                     fmt_ms(options.horizon)});
  }

  // --- Window containment. --------------------------------------------------
  for (const auto& [lane, windows] : options.lane_windows) {
    for (const auto& s : timeline.spans()) {
      if (s.stream != lane) continue;
      const bool inside = std::any_of(windows.begin(), windows.end(), [&](const Interval& w) {
        return s.start.value() >= w.start.value() - tol &&
               s.end.value() <= w.end.value() + tol;
      });
      if (!inside)
        out.push_back({"window", "lane '" + lane + "' span '" + s.label + "' [" +
                                     fmt_ms(s.start) + ", " + fmt_ms(s.end) +
                                     "] escapes every allowed window"});
    }
  }

  // --- Exact span counts. ---------------------------------------------------
  for (const auto& [lane, expected] : options.expected_span_count) {
    const auto actual = static_cast<int>(timeline.spans_on(lane).size());
    if (actual != expected)
      out.push_back({"span-count", "lane '" + lane + "' has " + std::to_string(actual) +
                                       " span(s), expected " + std::to_string(expected)});
  }

  return out;
}

std::string describe(const std::vector<Violation>& violations) {
  std::string out;
  for (const auto& v : violations) {
    if (!out.empty()) out += '\n';
    out += "[" + v.check + "] " + v.detail;
  }
  return out;
}

void validate_or_throw(const Timeline& timeline, const ValidateOptions& options,
                       const std::string& context) {
  const auto violations = validate(timeline, options);
  if (violations.empty()) return;
  std::string msg = context.empty() ? "trace::validate" : context;
  msg += ": timeline violates " + std::to_string(violations.size()) + " invariant(s):\n";
  msg += describe(violations);
  throw std::logic_error(msg);
}

}  // namespace gradcomp::trace
