#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gradcomp::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::add_row: column count mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  const auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    os << '\n';
  };

  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << "csv";
    for (const auto& cell : cells) os << ',' << cell;
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string Table::fmt_ms(double seconds, int precision) {
  return fmt(seconds * 1e3, precision);
}

}  // namespace gradcomp::stats
