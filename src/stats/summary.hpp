// Streaming and batch summary statistics used by every benchmark harness.
//
// The paper reports iteration timings as "run 110 iterations, discard the
// first 10, average the remaining 100, error bars are standard deviation"
// (Section 3.2). `Summary` implements exactly that protocol; `OnlineStats`
// is the allocation-free Welford accumulator underneath.
#pragma once

#include <cstddef>
#include <vector>

namespace gradcomp::stats {

// Welford online mean/variance accumulator. O(1) memory, numerically stable.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch summary that retains samples so order statistics are available.
// `warmup` leading samples are excluded from every statistic, mirroring the
// paper's discard-first-10 measurement protocol.
class Summary {
 public:
  explicit Summary(std::size_t warmup = 0) : warmup_(warmup) {}

  void add(double x);
  [[nodiscard]] std::size_t count() const noexcept;  // post-warmup samples
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double median() const;
  // q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double q) const;

 private:
  [[nodiscard]] std::vector<double> effective() const;

  std::size_t warmup_;
  std::vector<double> samples_;
};

// Median of |a-b|/b over paired series, as used for the Figure 8 model
// validation ("median difference between predictions and measured runtime").
[[nodiscard]] double median_relative_error(const std::vector<double>& predicted,
                                           const std::vector<double>& measured);

}  // namespace gradcomp::stats
