// Wall-clock timing utilities for encode/decode measurements (Table 2).
#pragma once

#include <chrono>

namespace gradcomp::stats {

// Monotonic stopwatch. Construction starts it; `seconds()` reads elapsed time.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Times `fn` over `iters` invocations and returns mean seconds per call.
template <typename Fn>
[[nodiscard]] double time_mean_seconds(Fn&& fn, int iters) {
  WallTimer t;
  for (int i = 0; i < iters; ++i) fn();
  return t.seconds() / static_cast<double>(iters > 0 ? iters : 1);
}

}  // namespace gradcomp::stats
