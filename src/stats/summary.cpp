#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gradcomp::stats {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void Summary::add(double x) { samples_.push_back(x); }

std::vector<double> Summary::effective() const {
  if (samples_.size() <= warmup_) return {};
  return {samples_.begin() + static_cast<std::ptrdiff_t>(warmup_), samples_.end()};
}

std::size_t Summary::count() const noexcept {
  return samples_.size() > warmup_ ? samples_.size() - warmup_ : 0;
}

double Summary::mean() const {
  OnlineStats s;
  for (double x : effective()) s.add(x);
  return s.mean();
}

double Summary::stddev() const {
  OnlineStats s;
  for (double x : effective()) s.add(x);
  return s.stddev();
}

double Summary::min() const {
  OnlineStats s;
  for (double x : effective()) s.add(x);
  return s.count() > 0 ? s.min() : 0.0;
}

double Summary::max() const {
  OnlineStats s;
  for (double x : effective()) s.add(x);
  return s.count() > 0 ? s.max() : 0.0;
}

double Summary::median() const { return percentile(0.5); }

double Summary::percentile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q must be in [0,1]");
  auto v = effective();
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v.front();
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median_relative_error(const std::vector<double>& predicted,
                             const std::vector<double>& measured) {
  if (predicted.size() != measured.size())
    throw std::invalid_argument("median_relative_error: size mismatch");
  if (predicted.empty()) return 0.0;
  std::vector<double> errs;
  errs.reserve(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double denom = std::abs(measured[i]) > std::numeric_limits<double>::epsilon()
                             ? std::abs(measured[i])
                             : 1.0;
    errs.push_back(std::abs(predicted[i] - measured[i]) / denom);
  }
  std::sort(errs.begin(), errs.end());
  const std::size_t n = errs.size();
  return n % 2 == 1 ? errs[n / 2] : 0.5 * (errs[n / 2 - 1] + errs[n / 2]);
}

}  // namespace gradcomp::stats
