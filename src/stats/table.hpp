// Console table / CSV emitter shared by the per-figure benchmark harnesses.
//
// Every bench binary prints the same rows the paper's table or figure
// reports: an aligned human-readable table plus a machine-readable CSV block
// (prefixed "csv," so downstream plotting can grep it out).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gradcomp::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds one row; throws std::invalid_argument on column-count mismatch.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

  // Aligned, boxed console rendering.
  void print(std::ostream& os) const;
  // One "csv,<c1>,<c2>,..." line per row (headers first).
  void print_csv(std::ostream& os) const;

  // Formatting helpers for cells.
  static std::string fmt(double value, int precision = 2);
  static std::string fmt_ms(double seconds, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gradcomp::stats
