#include "adapt/estimators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/perf_model.hpp"
#include "models/bucketing.hpp"

namespace gradcomp::adapt {

// ---------------------------------------------------------------------------
// Ewma

Ewma::Ewma(double half_life) {
  if (half_life <= 0.0) throw std::invalid_argument("Ewma: half_life must be > 0");
  decay_ = std::exp(-std::log(2.0) / half_life);
}

void Ewma::update(double sample) {
  value_ = count_ == 0 ? sample : decay_ * value_ + (1.0 - decay_) * sample;
  ++count_;
}

double Ewma::value() const {
  if (count_ == 0) throw std::logic_error("Ewma: no samples yet");
  return value_;
}

// ---------------------------------------------------------------------------
// WindowPercentile

WindowPercentile::WindowPercentile(int capacity)
    : capacity_(static_cast<std::size_t>(capacity)) {
  if (capacity < 1) throw std::invalid_argument("WindowPercentile: capacity must be >= 1");
}

void WindowPercentile::update(double sample) {
  if (window_.size() < capacity_) {
    window_.push_back(sample);
  } else {
    window_[next_] = sample;
  }
  next_ = (next_ + 1) % capacity_;
}

double WindowPercentile::percentile(double q) const {
  if (window_.empty()) throw std::logic_error("WindowPercentile: no samples yet");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("WindowPercentile: q must be in [0, 1]");
  std::vector<double> sorted = window_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::min<double>(std::floor(q * static_cast<double>(sorted.size())),
                       static_cast<double>(sorted.size() - 1)));
  return sorted[rank];
}

// ---------------------------------------------------------------------------
// CollectiveShape

CollectiveShape collective_shape(const compress::CompressorConfig& config,
                                 const models::ModelProfile& model,
                                 std::int64_t bucket_bytes) {
  using compress::Method;
  CollectiveShape shape;
  switch (config.method) {
    case Method::kSyncSgd:
    case Method::kFp16:
      // One ring all-reduce per DDP bucket.
      shape.count = static_cast<int>(models::bucket_sizes(model, bucket_bytes).size());
      break;
    case Method::kPowerSgd: {
      const auto bytes = core::PerfModel::low_rank_bytes(model, config.rank);
      shape.count = bytes.dense_bytes.value() > 0 ? 3 : 2;  // P, Q, (+ 1-D layers)
      break;
    }
    case Method::kRandomK:
      shape.count = 1;  // values-only ring all-reduce
      break;
    case Method::kTopK:
    case Method::kDgc:
      shape = {2, true};  // values + indices all-gathers
      break;
    case Method::kAtomo: {
      const auto bytes = core::PerfModel::low_rank_bytes(model, config.rank);
      shape = {bytes.dense_bytes.value() > 0 ? 2 : 1, true};
      break;
    }
    case Method::kSignSgd:
    case Method::kOneBit:
    case Method::kQsgd:
    case Method::kTernGrad:
    case Method::kNatural:
      shape = {1, true};
      break;
  }
  return shape;
}

// ---------------------------------------------------------------------------
// LinkEstimator

LinkEstimator::LinkEstimator(comm::Network base, double half_life, int window)
    : base_(base), ewma_(half_life), window_(window) {}

void LinkEstimator::observe(const Observation& o) {
  const int p = o.world_size;
  if (p < 2 || o.wire_bytes.value() <= 0.0 || o.collective.value() <= 0.0) return;
  // Ring all-reduce of b bytes:  T = alpha*(p-1) + 2*b*(p-1)/(p*BW)
  // All-gather of b bytes/rank:  T = alpha*(p-1) + b*(p-1)/BW
  // With `count` back-to-back collectives moving `wire_bytes` total, the
  // latency term multiplies by count and the bandwidth term keeps the total
  // payload, so BW falls straight out of the measured wall time. The EWMA
  // and window run in bytes/s; the accessors wrap on the way out.
  const double latency =
      static_cast<double>(o.shape.count) * base_.alpha.value() * static_cast<double>(p - 1);
  const double transfer = o.collective.value() - latency;
  if (transfer <= 0.0) return;  // not explainable at any positive bandwidth
  const double pd = static_cast<double>(p);
  const double bw = o.shape.allgather
                        ? o.wire_bytes.value() * (pd - 1.0) / transfer
                        : 2.0 * o.wire_bytes.value() * (pd - 1.0) / (pd * transfer);
  if (!std::isfinite(bw) || bw <= 0.0) return;
  ewma_.update(bw);
  window_.update(bw);
}

BitsPerSecond LinkEstimator::bandwidth() const {
  return ewma_.ready() ? BitsPerSecond::from_bytes_per_second(ewma_.value()) : base_.bandwidth;
}

BitsPerSecond LinkEstimator::percentile_bandwidth(double q) const {
  return window_.ready() ? BitsPerSecond::from_bytes_per_second(window_.percentile(q))
                         : base_.bandwidth;
}

comm::Network LinkEstimator::network() const {
  comm::Network net = base_;
  net.bandwidth = bandwidth();
  return net;
}

// ---------------------------------------------------------------------------
// ComputeEstimator

ComputeEstimator::ComputeEstimator(models::Device base, double half_life, int window)
    : base_(std::move(base)), ewma_(half_life), window_(window) {}

void ComputeEstimator::observe(const Observation& o) {
  if (o.backward.value() <= 0.0 || o.nominal_backward.value() <= 0.0) return;
  // Floor far below any physical speedup: keeps a degenerate measurement
  // (e.g. a microsecond-scale in-process backward against a modeled GPU
  // profile) finite without biasing realistic samples.
  const double stretch = std::max(o.backward / o.nominal_backward, 1e-6);
  ewma_.update(stretch);
  window_.update(stretch);
}

double ComputeEstimator::stretch() const { return ewma_.ready() ? ewma_.value() : 1.0; }

double ComputeEstimator::percentile_stretch(double q) const {
  return window_.ready() ? window_.percentile(q) : 1.0;
}

models::Device ComputeEstimator::device() const {
  models::Device d = base_;
  d.compute_scale = base_.compute_scale / stretch();
  return d;
}

}  // namespace gradcomp::adapt
