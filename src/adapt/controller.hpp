// Online adaptive-compression policy engine.
//
// Closes the loop the paper leaves open: core::advise() renders the
// Section 7 verdict for ONE static cluster description, but live clusters
// move through regimes (link-degradation windows, stragglers — see
// core::FaultPlan). The Controller re-runs the advisor every
// `decision_interval` iterations against a cluster REBUILT from measured
// signals (adapt/estimators.hpp) and switches the active scheme when the
// predicted win clears a hysteresis band, so training tracks the
// per-regime winner without thrashing at crossover bandwidths.
//
// The controller is a pure function of its observation stream: identical
// observations produce identical decisions, which is what makes adaptive
// runs replayable (decisions are logged in the CompressorConfig wire form).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "adapt/estimators.hpp"
#include "core/advisor.hpp"

namespace gradcomp::adapt {

struct ControllerOptions {
  // Iterations between advisor re-runs (>= 1).
  int decision_interval = 5;
  // Minimum iterations between SWITCHES: after changing schemes the
  // controller holds the new one at least this long (>= 0).
  int min_dwell = 10;
  // Required predicted advantage before switching: the challenger must be
  // predicted at least (1 + switch_margin) times faster than the incumbent.
  // Together with min_dwell this is the anti-thrash hysteresis.
  double switch_margin = 0.05;
  // EWMA half-life (iterations) for both estimators.
  double estimator_half_life = 4.0;
  // Sliding-window size for the estimators' percentile queries.
  int estimator_window = 32;
  // Candidate panel the advisor evaluates; empty = core::default_candidates().
  // syncSGD is always in the pool as the implicit baseline.
  std::vector<core::Candidate> candidates;
  // Scheme the controller starts on (default: uncompressed syncSGD).
  core::Candidate initial{"syncSGD", {}};
};

// One advisor consultation. Every decision point produces a Decision —
// including "stay" verdicts — so callers can render a gap-free "adapt"
// stream on their Timeline.
struct Decision {
  int iteration = 0;   // observation index that closed the decision window
  bool switched = false;
  core::Candidate chosen;        // active scheme AFTER this decision
  std::string reason;            // human-readable justification
  Seconds predicted;             // modeled iteration time of `chosen`
  Seconds incumbent;             // modeled iteration time of the previous scheme
  BitsPerSecond effective_bandwidth;  // link estimate the advisor saw
  double compute_stretch = 1.0;  // compute estimate the advisor saw
};

class Controller {
 public:
  // `cluster` is the prior: its network/device seed the estimators and its
  // world size is used until observations report otherwise.
  Controller(core::Workload workload, core::Cluster cluster, ControllerOptions options);

  // Feeds one iteration's signals. Returns a Decision when this observation
  // closes a decision window, nullopt otherwise.
  std::optional<Decision> observe(const Observation& o);

  // The scheme a caller should run the NEXT iteration with.
  [[nodiscard]] const core::Candidate& current() const noexcept { return current_; }
  [[nodiscard]] const std::vector<Decision>& decisions() const noexcept { return decisions_; }
  // Iterations observed so far.
  [[nodiscard]] int iteration() const noexcept { return iteration_; }
  // Total scheme switches so far.
  [[nodiscard]] int switches() const noexcept { return switches_; }

  [[nodiscard]] const LinkEstimator& link() const noexcept { return link_; }
  [[nodiscard]] const ComputeEstimator& compute() const noexcept { return compute_; }
  // The measurement-rebuilt cluster the next advisor run would see.
  [[nodiscard]] core::Cluster estimated_cluster() const;

 private:
  [[nodiscard]] Decision decide();

  core::Workload workload_;
  core::Cluster base_cluster_;
  ControllerOptions options_;
  LinkEstimator link_;
  ComputeEstimator compute_;
  core::Candidate current_;
  std::vector<Decision> decisions_;
  int iteration_ = 0;
  int last_switch_iteration_ = 0;
  int last_world_ = 0;
  int switches_ = 0;
};

}  // namespace gradcomp::adapt
