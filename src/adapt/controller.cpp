#include "adapt/controller.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "compress/registry.hpp"

namespace gradcomp::adapt {

namespace {

std::string fmt_ms(Seconds seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g ms", seconds.ms());
  return buf;
}

std::string fmt_x(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

}  // namespace

Controller::Controller(core::Workload workload, core::Cluster cluster,
                       ControllerOptions options)
    : workload_(std::move(workload)),
      base_cluster_(std::move(cluster)),
      options_(std::move(options)),
      link_(base_cluster_.network, options_.estimator_half_life, options_.estimator_window),
      compute_(base_cluster_.device, options_.estimator_half_life, options_.estimator_window),
      current_(options_.initial),
      last_world_(base_cluster_.world_size) {
  if (options_.decision_interval < 1)
    throw std::invalid_argument("Controller: decision_interval must be >= 1");
  if (options_.min_dwell < 0)
    throw std::invalid_argument("Controller: min_dwell must be >= 0");
  if (options_.switch_margin < 0.0)
    throw std::invalid_argument("Controller: switch_margin must be >= 0");
  if (base_cluster_.world_size < 1)
    throw std::invalid_argument("Controller: cluster world_size must be >= 1");
  if (options_.candidates.empty()) options_.candidates = core::default_candidates();
}

std::optional<Decision> Controller::observe(const Observation& o) {
  link_.observe(o);
  compute_.observe(o);
  if (o.world_size >= 1) last_world_ = o.world_size;
  ++iteration_;
  if (iteration_ % options_.decision_interval != 0) return std::nullopt;
  Decision d = decide();
  decisions_.push_back(d);
  return d;
}

core::Cluster Controller::estimated_cluster() const {
  core::Cluster c = base_cluster_;
  c.world_size = last_world_;
  c.network = link_.network();
  c.device = compute_.device();
  return c;
}

Decision Controller::decide() {
  const core::Cluster cluster = estimated_cluster();
  const core::Recommendation rec = core::advise(workload_, cluster, options_.candidates);

  // The decision pool: syncSGD plus the ranked panel. The incumbent's time
  // comes from the same advisor run when it is in the pool, or from a direct
  // model evaluation when the controller was started on an off-panel scheme.
  const bool incumbent_is_sync =
      current_.config.method == compress::Method::kSyncSgd;
  Seconds incumbent = incumbent_is_sync ? rec.sync.total : Seconds{};
  if (!incumbent_is_sync) {
    for (const auto& r : rec.ranked)
      if (r.candidate.config == current_.config) {
        incumbent = r.breakdown.total;
        break;
      }
    if (incumbent.value() == 0.0)
      incumbent =
          core::PerfModel{}.compressed(current_.config, workload_, cluster).total;
  }

  core::Candidate challenger{"syncSGD", {}};
  Seconds challenger_time = rec.sync.total;
  if (!rec.ranked.empty() && rec.ranked.front().breakdown.total < challenger_time) {
    challenger = rec.ranked.front().candidate;
    challenger_time = rec.ranked.front().breakdown.total;
  }

  Decision d;
  d.iteration = iteration_;
  d.effective_bandwidth = link_.bandwidth();
  d.compute_stretch = compute_.stretch();
  d.incumbent = incumbent;

  char where[96];
  std::snprintf(where, sizeof(where), " [%.2f Gbps eff, stretch %.2f]",
                d.effective_bandwidth.gbps(), d.compute_stretch);

  if (challenger.config == current_.config) {
    d.chosen = current_;
    d.predicted = incumbent;
    d.reason = current_.label + " still predicted fastest (" + fmt_ms(incumbent) + ")" + where;
    return d;
  }

  const double advantage = challenger_time.value() > 0.0 ? incumbent / challenger_time : 0.0;
  if (iteration_ - last_switch_iteration_ < options_.min_dwell) {
    d.chosen = current_;
    d.predicted = incumbent;
    d.reason = "hold " + current_.label + ": " + challenger.label + " predicted " +
               fmt_x(advantage) + " but dwell not elapsed" + where;
    return d;
  }
  if (advantage < 1.0 + options_.switch_margin) {
    d.chosen = current_;
    d.predicted = incumbent;
    d.reason = "hold " + current_.label + ": " + challenger.label + " predicted " +
               fmt_x(advantage) + ", inside switch margin" + where;
    return d;
  }

  d.switched = true;
  d.chosen = challenger;
  d.predicted = challenger_time;
  d.reason = "switch " + current_.label + " -> " + challenger.label + " (" +
             compress::config_to_string(challenger.config) + "): predicted " +
             fmt_x(advantage) + where;
  current_ = challenger;
  last_switch_iteration_ = iteration_;
  ++switches_;
  return d;
}

}  // namespace gradcomp::adapt
