// Online estimators for the adaptive-compression controller.
//
// The paper's verdict — compression pays off only in specific
// bandwidth/compute regimes (Section 7) — is delivered statically by
// core::advise(). These estimators recover the two regime coordinates from
// live per-iteration measurements so the advisor can be re-run online:
//
//   * LinkEstimator inverts the alpha-beta collective cost model
//     (comm/cost_model.hpp) to turn (bytes moved, collective wall time)
//     into an EFFECTIVE bandwidth estimate — whatever mixture of link
//     degradation, incast, and contention produced the observed time;
//   * ComputeEstimator turns (measured backward time / modeled backward
//     time) into a compute-stretch estimate covering stragglers, thermal
//     throttling, and mis-calibrated device profiles alike.
//
// Both smooth their samples with an EWMA (half-life in iterations) and keep
// a bounded window for percentile queries, so a controller can trade
// responsiveness against straggler-spike robustness.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/cost_model.hpp"
#include "compress/compressor.hpp"
#include "core/units.hpp"
#include "models/device.hpp"
#include "models/model_profile.hpp"

namespace gradcomp::adapt {

using core::units::BitsPerSecond;
using core::units::Bytes;
using core::units::Seconds;

// Exponentially weighted moving average parameterized by half-life: after
// `half_life` updates an old sample contributes half its original weight.
class Ewma {
 public:
  explicit Ewma(double half_life);

  void update(double sample);
  [[nodiscard]] bool ready() const noexcept { return count_ > 0; }
  [[nodiscard]] int count() const noexcept { return count_; }
  // Current estimate; throws std::logic_error before the first update.
  [[nodiscard]] double value() const;

 private:
  double decay_ = 0.5;
  double value_ = 0.0;
  int count_ = 0;
};

// Bounded sliding window with percentile queries (exact, by sorting the
// window — capacities are small).
class WindowPercentile {
 public:
  explicit WindowPercentile(int capacity);

  void update(double sample);
  [[nodiscard]] bool ready() const noexcept { return !window_.empty(); }
  // q in [0, 1]; nearest-rank percentile over the current window. Throws
  // std::logic_error before the first update.
  [[nodiscard]] double percentile(double q) const;

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring cursor
  std::vector<double> window_;
};

// How a scheme's aggregation maps onto collectives: the number of back-to-
// back collective calls (each paying its own alpha*(p-1) latency term) and
// whether they are all-gathers (payload grows with p) or ring all-reduces.
// Needed to invert a summed collective wall time back into a bandwidth.
struct CollectiveShape {
  int count = 1;
  bool allgather = false;
};

[[nodiscard]] CollectiveShape collective_shape(const compress::CompressorConfig& config,
                                               const models::ModelProfile& model,
                                               std::int64_t bucket_bytes);

// One iteration's measured signals, fed by the simulator (modeled timings)
// or the trainer (wall clock).
struct Observation {
  Bytes wire_bytes;          // logical payload one rank moved (PerfModel::wire_bytes)
  Seconds collective;        // summed collective wall time (busy, not exposed)
  Seconds backward;          // measured backward-pass wall time
  Seconds nominal_backward;  // modeled backward time on the base device
  int world_size = 1;
  CollectiveShape shape;
};

class LinkEstimator {
 public:
  // `base` supplies the latency term used in the inversion and the prior
  // bandwidth reported before any valid sample arrives.
  explicit LinkEstimator(comm::Network base, double half_life = 8.0, int window = 32);

  // Inverts the alpha-beta model for the observation's collective shape.
  // Observations whose wall time is not explainable at any positive
  // bandwidth (time <= latency term, zero bytes) are discarded.
  void observe(const Observation& o);

  [[nodiscard]] bool ready() const noexcept { return ewma_.ready(); }
  [[nodiscard]] int samples() const noexcept { return ewma_.count(); }
  // EWMA effective bandwidth; the base network's before the first valid
  // sample. Convert with .gbps() / .bytes_per_second() as needed.
  [[nodiscard]] BitsPerSecond bandwidth() const;
  // Robust lower quantile over the window (e.g. q=0.5 for median), for
  // controllers that want spike resistance instead of the EWMA.
  [[nodiscard]] BitsPerSecond percentile_bandwidth(double q) const;
  // The base network with its bandwidth replaced by the current estimate.
  [[nodiscard]] comm::Network network() const;

 private:
  comm::Network base_;
  Ewma ewma_;
  WindowPercentile window_;
};

class ComputeEstimator {
 public:
  explicit ComputeEstimator(models::Device base, double half_life = 8.0, int window = 32);

  // stretch sample = measured / nominal backward time; non-positive inputs
  // are discarded. Clamped to a sane floor so a pathological measurement
  // cannot produce an infinite device.
  void observe(const Observation& o);

  [[nodiscard]] bool ready() const noexcept { return ewma_.ready(); }
  [[nodiscard]] int samples() const noexcept { return ewma_.count(); }
  // EWMA compute stretch (> 1 means slower than the base device); 1.0
  // before the first sample.
  [[nodiscard]] double stretch() const;
  [[nodiscard]] double percentile_stretch(double q) const;
  // The base device rescaled by the estimated stretch.
  [[nodiscard]] models::Device device() const;

 private:
  models::Device base_;
  Ewma ewma_;
  WindowPercentile window_;
};

}  // namespace gradcomp::adapt
