// Small CNN classifier: conv -> ReLU -> conv -> ReLU -> global average
// pooling -> linear. Its 4-D convolution weight gradients are exactly what
// PowerSGD/ATOMO matricize, so data-parallel training of this network
// exercises the compression stack on realistic CNN gradients end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "train/conv.hpp"
#include "train/nn.hpp"

namespace gradcomp::train {

class ConvNet {
 public:
  // Input images are {B, in_channels, image_size, image_size}.
  ConvNet(std::int64_t in_channels, std::int64_t image_size, std::int64_t classes,
          std::uint64_t seed, std::int64_t hidden_channels = 8);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& images) const;
  // Forward + backward; fills all parameter gradients; returns mean CE loss.
  double compute_gradients(const tensor::Tensor& images, const std::vector<int>& labels);

  [[nodiscard]] double loss(const tensor::Tensor& images, const std::vector<int>& labels) const;
  [[nodiscard]] double accuracy(const tensor::Tensor& images,
                                const std::vector<int>& labels) const;

  // Parameter/gradient tensors in a stable order (conv1.w, conv1.b,
  // conv2.w, conv2.b, fc.w, fc.b) for the compression loop.
  [[nodiscard]] std::vector<tensor::Tensor*> parameters();
  [[nodiscard]] std::vector<tensor::Tensor*> gradients();

  // w -= lr * grad over all parameters.
  void apply_sgd(float lr);

  [[nodiscard]] std::int64_t num_classes() const noexcept { return classes_; }

 private:
  struct Activations {
    tensor::Tensor a1;      // post-ReLU conv1 output
    tensor::Tensor a2;      // post-ReLU conv2 output
    tensor::Tensor pooled;  // {B, hidden}
  };
  [[nodiscard]] Activations run_forward(const tensor::Tensor& images) const;

  std::int64_t classes_;
  std::int64_t image_size_;
  mutable Conv2d conv1_;  // forward caches im2col state
  mutable Conv2d conv2_;
  LinearLayer fc_;
};

}  // namespace gradcomp::train
