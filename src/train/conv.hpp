// 2-D convolution via im2col + GEMM, with manual backward.
//
// Convolutions matter to this study because their 4-D weight gradients are
// what PowerSGD/ATOMO matricize ({out, in, kh, kw} -> {out, in*kh*kw});
// a CNN trained through the data-parallel stack exercises that path with
// real gradients rather than synthetic tensors.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace gradcomp::train {

struct ConvSpec {
  std::int64_t in_channels = 1;
  std::int64_t out_channels = 1;
  std::int64_t kernel = 3;   // square kernels
  std::int64_t stride = 1;
  std::int64_t padding = 0;  // zero padding on all sides

  [[nodiscard]] std::int64_t out_size(std::int64_t in_size) const {
    return (in_size + 2 * padding - kernel) / stride + 1;
  }
};

// Lowers {batch, C, H, W} input patches to a {C*k*k, B*OH*OW} matrix so the
// convolution becomes one GEMM.
[[nodiscard]] tensor::Tensor im2col(const tensor::Tensor& input, const ConvSpec& spec);

// Inverse scatter-add of im2col: accumulates column gradients back to a
// {batch, C, H, W} tensor.
[[nodiscard]] tensor::Tensor col2im(const tensor::Tensor& columns, const ConvSpec& spec,
                                    const tensor::Shape& input_shape);

class Conv2d {
 public:
  // Weight {out, in, k, k} initialized Kaiming-style from `seed`; bias zero.
  Conv2d(ConvSpec spec, std::uint64_t seed);

  // input {B, C, H, W} -> output {B, out, OH, OW}; caches im2col for backward.
  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input);

  // grad_output {B, out, OH, OW} -> grad wrt input; fills grad_weight/bias.
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output);

  [[nodiscard]] const ConvSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] tensor::Tensor& weight() noexcept { return weight_; }
  [[nodiscard]] tensor::Tensor& bias() noexcept { return bias_; }
  [[nodiscard]] tensor::Tensor& grad_weight() noexcept { return grad_weight_; }
  [[nodiscard]] tensor::Tensor& grad_bias() noexcept { return grad_bias_; }

 private:
  ConvSpec spec_;
  tensor::Tensor weight_;       // {out, in, k, k}
  tensor::Tensor bias_;         // {out}
  tensor::Tensor grad_weight_;
  tensor::Tensor grad_bias_;
  tensor::Tensor cached_cols_;  // im2col of the last forward input
  tensor::Shape cached_input_shape_;
};

}  // namespace gradcomp::train
