// Synthetic classification datasets (the ImageNet/Sogou substitution for
// the end-to-end trainer: the timing study needs only gradient shapes, and
// the convergence study needs a learnable task, which gaussian class blobs
// provide deterministically).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace gradcomp::train {

struct Dataset {
  tensor::Tensor x;        // {n, dim}
  std::vector<int> y;      // n labels in [0, classes)
  std::int64_t classes = 0;

  [[nodiscard]] std::int64_t size() const { return x.ndim() == 2 ? x.dim(0) : 0; }
  [[nodiscard]] std::int64_t dim() const { return x.ndim() == 2 ? x.dim(1) : 0; }
};

// Gaussian blobs: `per_class` points around each of `classes` random
// centers in `dim` dimensions, noise stddev `spread`. Linearly separable
// for small spread; harder as spread grows.
[[nodiscard]] Dataset make_blobs(std::int64_t classes, std::int64_t dim, std::int64_t per_class,
                                 float spread, std::uint64_t seed);

// Round-robin shard for one worker: samples rank, rank+p, rank+2p, ...
[[nodiscard]] Dataset shard(const Dataset& full, int rank, int world_size);

// The `index`-th batch of `batch_size` consecutive samples (wraps around).
[[nodiscard]] Dataset batch(const Dataset& data, std::int64_t index, std::int64_t batch_size);

}  // namespace gradcomp::train
