// Data-parallel trainer: the end-to-end integration of every substrate.
//
// p worker threads each hold a model replica and a compressor instance.
// Every step each worker computes gradients on its own data shard, the
// compressors aggregate layer-by-layer over REAL collectives (ring
// all-reduce or all-gather on the in-process ThreadComm), and each worker
// applies the identical aggregated update — so replicas stay bit-identical,
// which the trainer asserts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/thread_comm.hpp"
#include "compress/compressor.hpp"
#include "train/data.hpp"
#include "train/nn.hpp"
#include "train/optimizer.hpp"

namespace gradcomp::train {

struct TrainerConfig {
  int world_size = 4;
  std::vector<std::int64_t> layer_dims = {16, 64, 32, 4};
  compress::CompressorConfig compression;
  SgdOptions optimizer;
  std::int64_t batch_per_worker = 16;  // weak scaling: per-worker batch
  std::uint64_t seed = 7;
};

struct StepStats {
  double mean_local_loss = 0.0;       // average of workers' pre-update losses
  std::size_t bytes_per_worker = 0;   // wire bytes one worker sent this step
  double encode_seconds = 0.0;        // summed over layers, averaged over workers
  double decode_seconds = 0.0;
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(TrainerConfig config, Dataset dataset);

  // Runs one synchronous data-parallel step; all replicas update in lockstep.
  StepStats step();
  // Convenience: `n` steps, returning per-step mean losses.
  std::vector<double> train(int steps);

  // Evaluated on replica 0 over the full dataset.
  [[nodiscard]] double loss() const;
  [[nodiscard]] double accuracy() const;
  // Evaluated on replica 0 over an arbitrary (e.g. held-out) dataset.
  [[nodiscard]] double evaluate_loss(const Dataset& data) const;
  [[nodiscard]] double evaluate_accuracy(const Dataset& data) const;

  // Per-step stats recorded by step()/train(), oldest first.
  [[nodiscard]] const std::vector<StepStats>& history() const noexcept { return history_; }
  // Total wire bytes one worker transmitted across all steps so far.
  [[nodiscard]] std::size_t total_bytes_per_worker() const;

  // Max elementwise parameter divergence across replicas (should be 0).
  [[nodiscard]] double replica_divergence() const;

  [[nodiscard]] std::int64_t steps_taken() const noexcept { return step_count_; }
  [[nodiscard]] const Mlp& replica(int rank) const { return models_.at(static_cast<std::size_t>(rank)); }

 private:
  TrainerConfig config_;
  Dataset dataset_;
  std::vector<Dataset> shards_;
  std::vector<Mlp> models_;
  std::vector<std::unique_ptr<compress::Compressor>> compressors_;
  std::vector<SgdOptimizer> optimizers_;
  comm::ThreadComm comm_;
  std::vector<StepStats> history_;
  std::int64_t step_count_ = 0;
};

}  // namespace gradcomp::train
