// Data-parallel trainer: the end-to-end integration of every substrate.
//
// p worker threads each hold a model replica and a compressor instance.
// Every step each worker computes gradients on its own data shard, the
// compressors aggregate layer-by-layer over REAL collectives (ring
// all-reduce or all-gather on the in-process ThreadComm), and each worker
// applies the identical aggregated update — so replicas stay bit-identical,
// which the trainer asserts.
//
// Fault tolerance: a FaultPlan can schedule a rank to die mid-run. The dying
// rank declares itself dead, survivors observe comm::RankFailure at the
// step's first collective, shrink the group, and the step retries at p-1 —
// either continuing from current state (shrink-and-continue, gradients
// automatically reweighted because world_size() reports the active count)
// or rewinding to the last checkpoint first (restore-from-checkpoint).
//
// Elastic re-expansion: when the plan schedules a rejoin (death + downtime
// window), the replacement rank re-enters at the step boundary via
// comm::grow()/rejoin(), receives params + optimizer + shared compressor
// state in-band from the first survivor (its error feedback restarts at
// zero — stale residuals must not be reintroduced), and the step runs at
// the re-expanded world size. Each resync is recorded as a "rejoin" span on
// the trainer's timeline.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "adapt/controller.hpp"
#include "comm/thread_comm.hpp"
#include "compress/compressor.hpp"
#include "core/fault_plan.hpp"
#include "core/sync.hpp"
#include "trace/timeline.hpp"
#include "train/checkpoint.hpp"
#include "train/data.hpp"
#include "train/nn.hpp"
#include "train/optimizer.hpp"

namespace gradcomp::train {

// What to do after a rank failure has been detected and the group shrunk.
enum class RecoveryPolicy : std::uint8_t {
  kShrinkContinue,      // survivors retry the step from current state
  kRestoreCheckpoint,   // rewind to the last checkpoint first (falls back to
                        // shrink-and-continue when no checkpoint exists)
};

struct TrainerConfig {
  int world_size = 4;
  std::vector<std::int64_t> layer_dims = {16, 64, 32, 4};
  compress::CompressorConfig compression;
  SgdOptions optimizer;
  std::int64_t batch_per_worker = 16;  // weak scaling: per-worker batch
  std::uint64_t seed = 7;

  // Scheduled faults (only rank-failure events apply to the real trainer;
  // stretch/link events shape the simulator). Empty = fault-free.
  core::FaultPlan fault_plan;
  RecoveryPolicy recovery = RecoveryPolicy::kShrinkContinue;
  // Take an in-memory checkpoint every N successful steps (0 disables).
  int checkpoint_every = 0;
  // Deadline for every blocking collective wait in the thread group.
  std::chrono::milliseconds comm_timeout{10000};

  // Online adaptive compression. When enabled, `compression` above is only
  // the STARTING scheme: after each successful step the trainer feeds its
  // wall-clock timings to an adapt::Controller, and a switch decision swaps
  // every surviving rank's compressor between steps. Swapping resets
  // error-feedback / warm-start state (the schemes' state spaces are
  // incompatible), so the new scheme warms up from scratch — and any
  // held checkpoint's compressor blobs are dropped for the same reason.
  struct AdaptiveConfig {
    bool enabled = false;
    adapt::ControllerOptions controller;
    // Modeled workload driving the advisor's candidate evaluation. The
    // estimators calibrate the model's cluster to reality, so this profile
    // sets the SHAPE of the trade-off, not its absolute scale.
    core::Workload workload;
    // Prior cluster (network/device) seeding the estimators; world_size
    // follows the live group.
    core::Cluster cluster;
  };
  AdaptiveConfig adaptive;
};

struct StepStats {
  double mean_local_loss = 0.0;       // average of workers' pre-update losses
  std::size_t bytes_per_worker = 0;   // wire bytes one worker sent this step
  double encode_seconds = 0.0;        // summed over layers, averaged over workers
  double decode_seconds = 0.0;
  int active_workers = 0;             // group size that executed this step
  // Wall-clock signals (what the adaptive controller consumes): the slowest
  // worker's backward pass, and its collective time net of encode/decode.
  double backward_seconds = 0.0;
  double comm_seconds = 0.0;
};

// One recovered failure: which ranks died before which step, and how the
// trainer resumed.
struct FailureRecord {
  std::int64_t step = 0;           // step being attempted when failure hit
  std::vector<int> failed_ranks;   // original rank ids removed by shrink()
  RecoveryPolicy action = RecoveryPolicy::kShrinkContinue;
  std::int64_t resumed_at_step = 0;  // == step for shrink-continue; checkpoint
                                     // step after a restore
};

// One completed re-expansion: which ranks rejoined before which step and how
// many bytes the in-band state resync broadcast moved.
struct RejoinRecord {
  std::int64_t step = 0;            // step about to run when the grow completed
  std::vector<int> rejoined_ranks;  // original rank ids re-admitted, ascending
  std::size_t resync_bytes = 0;     // size of the broadcast resync blob
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(TrainerConfig config, Dataset dataset);

  // Runs one synchronous data-parallel step; all replicas update in
  // lockstep. If a scheduled rank failure strikes, recovery runs inside this
  // call and the method returns once ONE step has completed successfully
  // (possibly an earlier step after a checkpoint rewind).
  StepStats step();
  // Runs until `steps` more successful steps are on the clock (steps_taken()
  // advances by `steps` net of any checkpoint rewinds). Returns per-step
  // mean losses, including re-executed steps after a rewind.
  std::vector<double> train(int steps);

  // Evaluated on the first surviving replica over the full dataset.
  [[nodiscard]] double loss() const;
  [[nodiscard]] double accuracy() const;
  // Evaluated on the first surviving replica over an arbitrary dataset.
  [[nodiscard]] double evaluate_loss(const Dataset& data) const;
  [[nodiscard]] double evaluate_accuracy(const Dataset& data) const;

  // Per-step stats recorded by step()/train(), oldest first. Truncated on a
  // checkpoint rewind so it always matches the realized trajectory.
  [[nodiscard]] const std::vector<StepStats>& history() const noexcept { return history_; }
  // Total wire bytes one worker transmitted across all steps so far.
  [[nodiscard]] std::size_t total_bytes_per_worker() const;
  // Failures survived so far, oldest first.
  [[nodiscard]] const std::vector<FailureRecord>& failures() const noexcept {
    return failures_;
  }
  // Re-expansions completed so far, oldest first.
  [[nodiscard]] const std::vector<RejoinRecord>& rejoins() const noexcept { return rejoins_; }

  // Max elementwise parameter divergence across SURVIVING replicas (0).
  [[nodiscard]] double replica_divergence() const;

  // --- adaptive compression ------------------------------------------------
  // Scheme currently installed in every surviving rank's compressor; equals
  // config.compression until the controller's first switch.
  [[nodiscard]] const compress::CompressorConfig& compression() const noexcept {
    return active_compression_;
  }
  [[nodiscard]] bool adaptive_enabled() const noexcept { return controller_ != nullptr; }
  // Every decision the controller has emitted (empty when adaptive is off).
  [[nodiscard]] std::vector<adapt::Decision> decisions() const;
  // Wall-clock timeline: one "adapt" span per closed decision window
  // (labelled with the scheme that ran it and the controller's reason) and
  // one "rejoin" span per re-admitted rank covering its state resync.
  [[nodiscard]] const trace::Timeline& timeline() const noexcept { return timeline_; }

  [[nodiscard]] std::int64_t steps_taken() const noexcept { return step_count_; }
  [[nodiscard]] int active_workers() const noexcept { return comm_.world_size(); }
  [[nodiscard]] std::vector<int> active_ranks() const { return comm_.active_ranks(); }
  [[nodiscard]] const Mlp& replica(int rank) const {
    return models_.at(static_cast<std::size_t>(rank));
  }

  // --- checkpointing -------------------------------------------------------
  // Snapshot of the current training state (params once, optimizer state,
  // per-surviving-rank compressor blobs).
  [[nodiscard]] Checkpoint make_checkpoint() const;
  // Rewinds to `ck`: parameters, optimizer, compressor error-feedback state,
  // and the step counter. The group's membership is NOT changed.
  void restore(const Checkpoint& ck);
  void save_checkpoint(const std::string& path) const;
  void load_checkpoint(const std::string& path);

 private:
  // Recovery after run_ranks observed a failure: record it and apply the
  // configured policy. `before` is the active set prior to the failure.
  void recover(const std::vector<int>& before);
  // Re-admits any ranks whose recovery window closes at the current step:
  // runs the grow/rejoin collective, broadcasts the resync blob from the
  // first survivor, and records a "rejoin" timeline span. No-op when the
  // plan schedules nothing (or the ranks are already active after a
  // checkpoint rewind re-ran this step).
  void maybe_rejoin();
  // The in-band resync payload: params + optimizer state + the SHARED
  // compressor state (error feedback deliberately excluded).
  [[nodiscard]] std::vector<std::byte> serialize_resync(int root) const;
  void apply_resync(int rank, std::span<const std::byte> blob);
  // Advances the wall clock and, when adaptive is on, feeds one observation
  // to the controller and applies any switch it decides between steps.
  void feed_controller(const StepStats& stats, double step_wall_s);

  TrainerConfig config_ GRADCOMP_SYNC_EXTERNAL("immutable after ctor");
  Dataset dataset_ GRADCOMP_SYNC_EXTERNAL("immutable after ctor");
  std::vector<Dataset> shards_ GRADCOMP_SYNC_EXTERNAL("rank-sharded: worker r reads shard r");
  // indexed by ORIGINAL rank
  std::vector<Mlp> models_ GRADCOMP_SYNC_EXTERNAL("rank-sharded: worker r touches index r");
  std::vector<std::unique_ptr<compress::Compressor>> compressors_
      GRADCOMP_SYNC_EXTERNAL("rank-sharded: worker r touches index r");
  std::vector<SgdOptimizer> optimizers_
      GRADCOMP_SYNC_EXTERNAL("rank-sharded: worker r touches index r");
  comm::ThreadComm comm_ GRADCOMP_SYNC_EXTERNAL("internally synchronized");
  // Guards the cross-rank state the step/rejoin worker lambdas write
  // (failure detection, resync accounting). TOP of the lock hierarchy
  // (kTrainerShared > kCommGroup): entering a collective while holding this
  // lock is a rank-order violation, so OrderedMutex turns "trainer lock held
  // across a blocking collective" — the classic elastic-training deadlock —
  // into an immediate LockOrderError in debug runs.
  mutable core::sync::OrderedMutex shared_mu_{core::sync::LockRank::kTrainerShared,
                                              "trainer-shared"};
  // Cross-rank state the step/rejoin worker lambdas write concurrently —
  // the fields gradcheck --share and clang -Wthread-safety exist to police.
  // Any survivor's shrink path may set this while peers are still working.
  bool step_failure_seen_ GRADCOMP_GUARDED_BY(shared_mu_) = false;
  // Written by the resync root while the rejoin workers run.
  std::size_t pending_resync_bytes_ GRADCOMP_GUARDED_BY(shared_mu_) = 0;
  std::vector<StepStats> history_ GRADCOMP_SYNC_EXTERNAL("main thread only");
  std::vector<FailureRecord> failures_ GRADCOMP_SYNC_EXTERNAL("main thread only");
  std::vector<RejoinRecord> rejoins_ GRADCOMP_SYNC_EXTERNAL("main thread only");
  std::int64_t step_count_
      GRADCOMP_SYNC_EXTERNAL("main thread writes between steps; workers read") = 0;
  Checkpoint last_checkpoint_ GRADCOMP_SYNC_EXTERNAL("main thread only");
  bool has_checkpoint_ GRADCOMP_SYNC_EXTERNAL("main thread only") = false;

  compress::CompressorConfig active_compression_ GRADCOMP_SYNC_EXTERNAL("main thread only");
  // null = adaptive off
  std::unique_ptr<adapt::Controller> controller_ GRADCOMP_SYNC_EXTERNAL("main thread only");
  trace::Timeline timeline_ GRADCOMP_SYNC_EXTERNAL("main thread only");
  // cumulative successful-step wall time
  double clock_s_ GRADCOMP_SYNC_EXTERNAL("main thread only") = 0.0;
  // start of the open "adapt" decision window
  double window_start_s_ GRADCOMP_SYNC_EXTERNAL("main thread only") = 0.0;
  // scheme label for the open window
  std::string running_label_ GRADCOMP_SYNC_EXTERNAL("main thread only");
};

}  // namespace gradcomp::train
