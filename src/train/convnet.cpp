#include "train/convnet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/linalg.hpp"
#include "tensor/rng.hpp"

namespace gradcomp::train {

namespace {

void relu_inplace(tensor::Tensor& t) {
  for (auto& v : t.data()) v = std::max(v, 0.0F);
}

// {B, C, H, W} -> {B, C} global average pooling.
tensor::Tensor global_avg_pool(const tensor::Tensor& t) {
  const std::int64_t b = t.dim(0);
  const std::int64_t c = t.dim(1);
  const std::int64_t hw = t.dim(2) * t.dim(3);
  tensor::Tensor out({b, c});
  auto src = t.data();
  auto dst = out.data();
  for (std::int64_t bi = 0; bi < b; ++bi)
    for (std::int64_t ci = 0; ci < c; ++ci) {
      double sum = 0.0;
      for (std::int64_t i = 0; i < hw; ++i)
        sum += src[static_cast<std::size_t>((bi * c + ci) * hw + i)];
      dst[static_cast<std::size_t>(bi * c + ci)] =
          static_cast<float>(sum / static_cast<double>(hw));
    }
  return out;
}

}  // namespace

ConvNet::ConvNet(std::int64_t in_channels, std::int64_t image_size, std::int64_t classes,
                 std::uint64_t seed, std::int64_t hidden_channels)
    : classes_(classes),
      image_size_(image_size),
      conv1_(ConvSpec{in_channels, hidden_channels, 3, 1, 1}, seed),
      conv2_(ConvSpec{hidden_channels, hidden_channels, 3, 1, 1}, seed ^ 0x5DEECE66DULL),
      fc_{tensor::Tensor({classes, hidden_channels}), tensor::Tensor({classes}),
          tensor::Tensor({classes, hidden_channels}), tensor::Tensor({classes})} {
  if (classes < 2 || image_size < 3)
    throw std::invalid_argument("ConvNet: need classes >= 2 and image_size >= 3");
  tensor::Rng rng(seed ^ 0x2545F4914F6CDD1DULL);
  fc_.w = tensor::Tensor::randn(fc_.w.shape(), rng);
  fc_.w.scale(static_cast<float>(std::sqrt(2.0 / static_cast<double>(hidden_channels))));
}

ConvNet::Activations ConvNet::run_forward(const tensor::Tensor& images) const {
  if (images.ndim() != 4 || images.dim(2) != image_size_ || images.dim(3) != image_size_)
    throw std::invalid_argument("ConvNet: bad image shape");
  Activations acts;
  acts.a1 = conv1_.forward(images);
  relu_inplace(acts.a1);
  acts.a2 = conv2_.forward(acts.a1);
  relu_inplace(acts.a2);
  acts.pooled = global_avg_pool(acts.a2);
  return acts;
}

tensor::Tensor ConvNet::forward(const tensor::Tensor& images) const {
  const Activations acts = run_forward(images);
  tensor::Tensor logits =
      tensor::matmul(acts.pooled, fc_.w, tensor::Transpose::kNo, tensor::Transpose::kYes);
  auto pl = logits.data();
  auto pb = fc_.b.data();
  const std::int64_t b = logits.dim(0);
  for (std::int64_t i = 0; i < b; ++i)
    for (std::int64_t j = 0; j < classes_; ++j)
      pl[static_cast<std::size_t>(i * classes_ + j)] += pb[static_cast<std::size_t>(j)];
  return logits;
}

double ConvNet::compute_gradients(const tensor::Tensor& images, const std::vector<int>& labels) {
  const std::int64_t batch = images.dim(0);
  if (static_cast<std::int64_t>(labels.size()) != batch)
    throw std::invalid_argument("ConvNet::compute_gradients: label count mismatch");

  const Activations acts = run_forward(images);
  tensor::Tensor logits =
      tensor::matmul(acts.pooled, fc_.w, tensor::Transpose::kNo, tensor::Transpose::kYes);
  {
    auto pl = logits.data();
    auto pb = fc_.b.data();
    for (std::int64_t i = 0; i < batch; ++i)
      for (std::int64_t j = 0; j < classes_; ++j)
        pl[static_cast<std::size_t>(i * classes_ + j)] += pb[static_cast<std::size_t>(j)];
  }

  tensor::Tensor delta = softmax_rows(logits);
  double loss_sum = 0.0;
  auto pd = delta.data();
  for (std::int64_t i = 0; i < batch; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= classes_)
      throw std::invalid_argument("ConvNet::compute_gradients: label out of range");
    loss_sum += -std::log(std::max(delta.at(i, y), 1e-12F));
    pd[static_cast<std::size_t>(i * classes_ + y)] -= 1.0F;
  }
  delta.scale(1.0F / static_cast<float>(batch));

  // FC layer gradients.
  fc_.grad_w = tensor::matmul(delta, acts.pooled, tensor::Transpose::kYes);
  fc_.grad_b.fill(0.0F);
  auto gb = fc_.grad_b.data();
  for (std::int64_t i = 0; i < batch; ++i)
    for (std::int64_t j = 0; j < classes_; ++j)
      gb[static_cast<std::size_t>(j)] += pd[static_cast<std::size_t>(i * classes_ + j)];

  // Back through pooling: each spatial position gets dpooled / (H*W), gated
  // by conv2's ReLU mask.
  const tensor::Tensor dpooled = tensor::matmul(delta, fc_.w);  // {B, hidden}
  const std::int64_t hidden = dpooled.dim(1);
  const std::int64_t hw = acts.a2.dim(2) * acts.a2.dim(3);
  tensor::Tensor d_a2(acts.a2.shape());
  {
    auto dp = dpooled.data();
    auto da = d_a2.data();
    auto a2 = acts.a2.data();
    const float inv_hw = 1.0F / static_cast<float>(hw);
    for (std::int64_t bi = 0; bi < batch; ++bi)
      for (std::int64_t ci = 0; ci < hidden; ++ci) {
        const float g = dp[static_cast<std::size_t>(bi * hidden + ci)] * inv_hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          const auto idx = static_cast<std::size_t>((bi * hidden + ci) * hw + i);
          da[idx] = a2[idx] > 0.0F ? g : 0.0F;
        }
      }
  }

  // Back through conv2 (gating by conv1's ReLU) and conv1.
  tensor::Tensor d_a1 = conv2_.backward(d_a2);
  {
    auto da = d_a1.data();
    auto a1 = acts.a1.data();
    for (std::size_t i = 0; i < da.size(); ++i)
      if (a1[i] <= 0.0F) da[i] = 0.0F;
  }
  (void)conv1_.backward(d_a1);

  return loss_sum / static_cast<double>(batch);
}

double ConvNet::loss(const tensor::Tensor& images, const std::vector<int>& labels) const {
  const tensor::Tensor probs = softmax_rows(forward(images));
  double loss_sum = 0.0;
  for (std::int64_t i = 0; i < probs.dim(0); ++i)
    loss_sum += -std::log(std::max(probs.at(i, labels[static_cast<std::size_t>(i)]), 1e-12F));
  return loss_sum / static_cast<double>(probs.dim(0));
}

double ConvNet::accuracy(const tensor::Tensor& images, const std::vector<int>& labels) const {
  const tensor::Tensor logits = forward(images);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < logits.dim(0); ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < classes_; ++j)
      if (logits.at(i, j) > logits.at(i, best)) best = j;
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return logits.dim(0) > 0 ? static_cast<double>(correct) / static_cast<double>(logits.dim(0))
                           : 0.0;
}

std::vector<tensor::Tensor*> ConvNet::parameters() {
  return {&conv1_.weight(), &conv1_.bias(), &conv2_.weight(), &conv2_.bias(), &fc_.w, &fc_.b};
}

std::vector<tensor::Tensor*> ConvNet::gradients() {
  return {&conv1_.grad_weight(), &conv1_.grad_bias(), &conv2_.grad_weight(),
          &conv2_.grad_bias(), &fc_.grad_w, &fc_.grad_b};
}

void ConvNet::apply_sgd(float lr) {
  auto params = parameters();
  auto grads = gradients();
  for (std::size_t i = 0; i < params.size(); ++i) params[i]->axpy(-lr, *grads[i]);
}

}  // namespace gradcomp::train
