// SGD with optional momentum, operating on an Mlp's parameter tensors.
#pragma once

#include <vector>

#include "train/nn.hpp"

namespace gradcomp::train {

struct SgdOptions {
  double lr = 0.05;
  double momentum = 0.0;   // 0 disables the velocity buffers
  double lr_decay = 1.0;   // per-step multiplicative decay, in (0, 1]
};

class SgdOptimizer {
 public:
  explicit SgdOptimizer(SgdOptions options = {});

  // w -= lr * (grad + momentum * velocity); velocity buffers are created
  // lazily to match the model's layer shapes. The learning rate decays by
  // lr_decay after every step.
  void step(Mlp& model);

  [[nodiscard]] const SgdOptions& options() const noexcept { return options_; }
  [[nodiscard]] double current_lr() const noexcept { return current_lr_; }

  // Checkpoint support: the decayed learning rate plus the momentum velocity
  // buffers (empty when momentum is 0 or before the first step).
  [[nodiscard]] const std::vector<std::pair<tensor::Tensor, tensor::Tensor>>& velocity()
      const noexcept {
    return velocity_;
  }
  void set_state(double current_lr,
                 std::vector<std::pair<tensor::Tensor, tensor::Tensor>> velocity);

 private:
  SgdOptions options_;
  double current_lr_;
  // velocity[i] = {v_w, v_b} for layer i.
  std::vector<std::pair<tensor::Tensor, tensor::Tensor>> velocity_;
};

}  // namespace gradcomp::train
