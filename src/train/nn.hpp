// Minimal feed-forward network with manual backpropagation.
//
// This is the real-training substrate: enough of a neural network (linear
// layers, ReLU, softmax cross-entropy) to run genuine data-parallel SGD
// with every compressor in the library and observe convergence — including
// the accuracy-side effects (error feedback fixing signSGD/TopK bias) that
// the paper's timing study deliberately brackets out.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace gradcomp::train {

// One dense layer: y = x W^T + b, with cached activations for backward.
struct LinearLayer {
  tensor::Tensor w;       // {out, in}
  tensor::Tensor b;       // {out}
  tensor::Tensor grad_w;  // same shape as w
  tensor::Tensor grad_b;  // same shape as b
};

class Mlp {
 public:
  // dims = {input, hidden..., classes}; weights get Kaiming-style init from
  // `seed` (identical seed -> identical replicas, as data parallelism
  // requires).
  Mlp(std::vector<std::int64_t> dims, std::uint64_t seed);

  // Forward pass; x is {batch, input}. Returns class logits {batch, classes}.
  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& x) const;

  // Forward + backward on a labeled batch. Fills every layer's gradients
  // (overwriting previous contents) and returns the mean cross-entropy loss.
  double compute_gradients(const tensor::Tensor& x, const std::vector<int>& labels);

  // Mean cross-entropy of the model on a labeled set (no gradients).
  [[nodiscard]] double loss(const tensor::Tensor& x, const std::vector<int>& labels) const;
  // Top-1 accuracy in [0, 1].
  [[nodiscard]] double accuracy(const tensor::Tensor& x, const std::vector<int>& labels) const;

  [[nodiscard]] std::size_t num_layers() const noexcept { return layers_.size(); }
  [[nodiscard]] std::vector<LinearLayer>& layers() noexcept { return layers_; }
  [[nodiscard]] const std::vector<LinearLayer>& layers() const noexcept { return layers_; }
  [[nodiscard]] std::int64_t num_classes() const noexcept { return dims_.back(); }
  [[nodiscard]] std::int64_t input_dim() const noexcept { return dims_.front(); }

 private:
  std::vector<std::int64_t> dims_;
  std::vector<LinearLayer> layers_;
};

// Row-wise softmax of logits (numerically stabilized); exposed for tests.
[[nodiscard]] tensor::Tensor softmax_rows(const tensor::Tensor& logits);

}  // namespace gradcomp::train
