// Versioned, CRC-guarded training checkpoints.
//
// A checkpoint captures everything needed to resume a data-parallel run
// bit-exactly: model parameters (stored once — replicas are identical by
// construction), optimizer state (decayed lr + momentum velocity), and each
// rank's compressor error-feedback blob. Error feedback is genuinely
// per-rank state — dropping it on restore changes the gradient stream — so
// it is keyed by ORIGINAL rank id and survives group shrinks.
//
// On-disk layout (little-endian):
//   [magic:u32 = 0x47434B50 "PKCG"][version:u32][payload_len:u64][crc32:u32]
//   [payload: payload_len bytes]
// The CRC covers the payload only; truncation, bad magic, an unsupported
// version, and a CRC mismatch each produce a distinct error message.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace gradcomp::train {

inline constexpr std::uint32_t kCheckpointMagic = 0x47434B50;  // "PKCG" on disk
inline constexpr std::uint32_t kCheckpointVersion = 1;

struct RankState {
  int rank = 0;  // original rank id (stable across shrinks)
  std::vector<std::byte> compressor_state;
};

struct Checkpoint {
  std::int64_t step = 0;
  std::vector<std::int64_t> layer_dims;
  // Interleaved per-layer parameters: w0, b0, w1, b1, ...
  std::vector<tensor::Tensor> params;
  double optimizer_lr = 0.0;
  // Momentum velocity, same interleaving as params (empty without momentum).
  std::vector<std::pair<tensor::Tensor, tensor::Tensor>> velocity;
  // One entry per surviving rank, ascending original rank id.
  std::vector<RankState> ranks;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  // Throws std::runtime_error with a distinct message for truncated input,
  // bad magic, unsupported version, and CRC mismatch.
  [[nodiscard]] static Checkpoint deserialize(std::span<const std::byte> bytes);

  void save(const std::string& path) const;
  [[nodiscard]] static Checkpoint load(const std::string& path);
};

}  // namespace gradcomp::train
