// Versioned, CRC-guarded, crash-consistent training checkpoints.
//
// A checkpoint captures everything needed to resume a data-parallel run
// bit-exactly: model parameters (stored once — replicas are identical by
// construction), optimizer state (decayed lr + momentum velocity), and each
// rank's compressor error-feedback blob. Error feedback is genuinely
// per-rank state — dropping it on restore changes the gradient stream — so
// it is keyed by ORIGINAL rank id and survives group shrinks.
//
// On-disk layout (little-endian):
//   [magic:u32 = 0x47434B50 "PKCG"][version:u32][payload_len:u64][crc32:u32]
//   [payload: payload_len bytes]
// The CRC covers the payload only; truncation, bad magic, an unsupported
// version, and a CRC mismatch each produce a distinct CheckpointError
// carrying the file path and byte offset where validation failed.
//
// Crash consistency: save() writes a temp sibling, flushes it to disk, and
// atomically renames it over the target — a crash mid-write can tear the
// temp file but never the published checkpoint. CheckpointRing keeps the
// last K snapshots so that even a checkpoint corrupted AFTER publication
// (torn disk, bit rot, an injected fault) only costs one ring slot:
// load_latest_valid() falls back to the newest snapshot that still
// validates.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace gradcomp::train {

inline constexpr std::uint32_t kCheckpointMagic = 0x47434B50;  // "PKCG" on disk
inline constexpr std::uint32_t kCheckpointVersion = 1;

// A checkpoint that failed to save, load, or validate. Carries enough
// context for actionable soak-harness logs: which file, at what byte offset
// validation stopped, and (for CRC failures) the expected vs actual
// checksum. `path` is empty when deserializing an in-memory buffer; the CRC
// fields are zero unless the failure is a checksum mismatch.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(const std::string& what, std::string path, std::uint64_t offset,
                  std::uint32_t crc_expected = 0, std::uint32_t crc_actual = 0);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }
  [[nodiscard]] std::uint32_t crc_expected() const noexcept { return crc_expected_; }
  [[nodiscard]] std::uint32_t crc_actual() const noexcept { return crc_actual_; }

 private:
  std::string path_;
  std::uint64_t offset_;
  std::uint32_t crc_expected_;
  std::uint32_t crc_actual_;
};

struct RankState {
  int rank = 0;  // original rank id (stable across shrinks)
  std::vector<std::byte> compressor_state;
};

struct Checkpoint {
  std::int64_t step = 0;
  std::vector<std::int64_t> layer_dims;
  // Interleaved per-layer parameters: w0, b0, w1, b1, ...
  std::vector<tensor::Tensor> params;
  double optimizer_lr = 0.0;
  // Momentum velocity, same interleaving as params (empty without momentum).
  std::vector<std::pair<tensor::Tensor, tensor::Tensor>> velocity;
  // One entry per surviving rank, ascending original rank id.
  std::vector<RankState> ranks;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  // Throws CheckpointError with a distinct message for truncated input,
  // bad magic, unsupported version, and CRC mismatch. `path` only provides
  // error context (empty for in-memory buffers).
  [[nodiscard]] static Checkpoint deserialize(std::span<const std::byte> bytes,
                                              const std::string& path = "");

  // Crash-consistent write: temp sibling + fsync + atomic rename. The
  // published file at `path` is always either the previous checkpoint or
  // the complete new one, never a torn mix. Throws CheckpointError on I/O
  // failure.
  void save(const std::string& path) const;
  [[nodiscard]] static Checkpoint load(const std::string& path);
};

// Rolling window of the last `capacity` checkpoints, one file per snapshot
// ("<prefix>-<step padded to 8 digits>.ck" so lexicographic order is step
// order). save() publishes atomically and evicts the oldest snapshot beyond
// capacity; load_latest_valid() walks newest-to-oldest past torn or
// CRC-failed files, recording what it skipped.
class CheckpointRing {
 public:
  // Creates `dir` if missing. capacity >= 1.
  CheckpointRing(std::string dir, int capacity, std::string prefix = "ckpt");

  // Saves `ck` as the newest snapshot and returns its path. The post-save
  // hook (fault injection in the chaos harness) runs after the file is
  // durable, before eviction.
  std::string save(const Checkpoint& ck);

  // Newest snapshot that deserializes cleanly; invalid files are skipped
  // and recorded in skipped(). Throws CheckpointError when no snapshot
  // validates.
  [[nodiscard]] Checkpoint load_latest_valid();

  // Snapshot paths currently in the ring, oldest to newest.
  [[nodiscard]] std::vector<std::string> snapshot_paths() const;
  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  struct SkippedFile {
    std::string path;
    std::string reason;
  };
  // Files load_latest_valid() had to skip, in the order encountered
  // (cumulative across calls).
  [[nodiscard]] const std::vector<SkippedFile>& skipped() const noexcept { return skipped_; }

  void set_post_save_hook(std::function<void(const std::string& path, std::int64_t step)> hook) {
    post_save_hook_ = std::move(hook);
  }

 private:
  std::string dir_;
  int capacity_;
  std::string prefix_;
  std::vector<SkippedFile> skipped_;
  std::function<void(const std::string&, std::int64_t)> post_save_hook_;
};

// Deliberately damages a checkpoint file for recovery testing: kTruncate
// cuts the file to `offset` bytes; kBitFlip XORs one bit at byte `offset`.
enum class CorruptionKind : std::uint8_t { kTruncate, kBitFlip };
void corrupt_file(const std::string& path, std::uint64_t offset, CorruptionKind kind);

}  // namespace gradcomp::train
