#include "train/optimizer.hpp"

#include <stdexcept>
#include <utility>

namespace gradcomp::train {

SgdOptimizer::SgdOptimizer(SgdOptions options) : options_(options), current_lr_(options.lr) {
  if (options.lr <= 0) throw std::invalid_argument("SgdOptimizer: lr must be > 0");
  if (options.momentum < 0 || options.momentum >= 1)
    throw std::invalid_argument("SgdOptimizer: momentum must be in [0, 1)");
  if (options.lr_decay <= 0 || options.lr_decay > 1)
    throw std::invalid_argument("SgdOptimizer: lr_decay must be in (0, 1]");
}

void SgdOptimizer::set_state(double current_lr,
                             std::vector<std::pair<tensor::Tensor, tensor::Tensor>> velocity) {
  if (current_lr <= 0) throw std::invalid_argument("SgdOptimizer: restored lr must be > 0");
  current_lr_ = current_lr;
  velocity_ = std::move(velocity);
}

void SgdOptimizer::step(Mlp& model) {
  auto& layers = model.layers();
  if (velocity_.empty() && options_.momentum > 0) {
    velocity_.reserve(layers.size());
    for (const auto& layer : layers)
      velocity_.emplace_back(tensor::Tensor(layer.w.shape()), tensor::Tensor(layer.b.shape()));
  }
  const auto lr = static_cast<float>(current_lr_);
  const auto mu = static_cast<float>(options_.momentum);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    auto& layer = layers[i];
    if (options_.momentum > 0) {
      auto& [vw, vb] = velocity_[i];
      vw.scale(mu);
      vw.add_(layer.grad_w);
      vb.scale(mu);
      vb.add_(layer.grad_b);
      layer.w.axpy(-lr, vw);
      layer.b.axpy(-lr, vb);
    } else {
      layer.w.axpy(-lr, layer.grad_w);
      layer.b.axpy(-lr, layer.grad_b);
    }
  }
  current_lr_ *= options_.lr_decay;
}

}  // namespace gradcomp::train
