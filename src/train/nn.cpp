#include "train/nn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/linalg.hpp"

namespace gradcomp::train {

Mlp::Mlp(std::vector<std::int64_t> dims, std::uint64_t seed) : dims_(std::move(dims)) {
  if (dims_.size() < 2) throw std::invalid_argument("Mlp: need at least input and output dims");
  tensor::Rng rng(seed);
  layers_.reserve(dims_.size() - 1);
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i) {
    const std::int64_t in = dims_[i];
    const std::int64_t out = dims_[i + 1];
    if (in < 1 || out < 1) throw std::invalid_argument("Mlp: dims must be >= 1");
    LinearLayer layer{tensor::Tensor::randn({out, in}, rng), tensor::Tensor({out}),
                      tensor::Tensor({out, in}), tensor::Tensor({out})};
    // Kaiming-style scaling keeps activations bounded through ReLU stacks.
    layer.w.scale(static_cast<float>(std::sqrt(2.0 / static_cast<double>(in))));
    layers_.push_back(std::move(layer));
  }
}

namespace {

tensor::Tensor linear_forward(const LinearLayer& layer, const tensor::Tensor& x) {
  tensor::Tensor y = tensor::matmul(x, layer.w, tensor::Transpose::kNo, tensor::Transpose::kYes);
  const std::int64_t batch = y.dim(0);
  const std::int64_t out = y.dim(1);
  auto py = y.data();
  auto pb = layer.b.data();
  for (std::int64_t i = 0; i < batch; ++i)
    for (std::int64_t j = 0; j < out; ++j)
      py[static_cast<std::size_t>(i * out + j)] += pb[static_cast<std::size_t>(j)];
  return y;
}

void relu_inplace(tensor::Tensor& t) {
  for (auto& v : t.data()) v = std::max(v, 0.0F);
}

}  // namespace

tensor::Tensor softmax_rows(const tensor::Tensor& logits) {
  if (logits.ndim() != 2) throw std::invalid_argument("softmax_rows: logits must be 2-D");
  tensor::Tensor probs = logits;
  const std::int64_t rows = probs.dim(0);
  const std::int64_t cols = probs.dim(1);
  auto p = probs.data();
  for (std::int64_t i = 0; i < rows; ++i) {
    float* row = p.data() + i * cols;
    const float row_max = *std::max_element(row, row + cols);
    double sum = 0.0;
    for (std::int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - row_max);
      sum += row[j];
    }
    const auto inv = static_cast<float>(1.0 / sum);
    for (std::int64_t j = 0; j < cols; ++j) row[j] *= inv;
  }
  return probs;
}

tensor::Tensor Mlp::forward(const tensor::Tensor& x) const {
  if (x.ndim() != 2 || x.dim(1) != input_dim())
    throw std::invalid_argument("Mlp::forward: bad input shape");
  tensor::Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = linear_forward(layers_[i], h);
    if (i + 1 < layers_.size()) relu_inplace(h);
  }
  return h;
}

double Mlp::compute_gradients(const tensor::Tensor& x, const std::vector<int>& labels) {
  const std::int64_t batch = x.dim(0);
  if (static_cast<std::int64_t>(labels.size()) != batch)
    throw std::invalid_argument("Mlp::compute_gradients: label count mismatch");

  // Forward, caching post-activation inputs of every layer.
  std::vector<tensor::Tensor> inputs;  // inputs[i] feeds layers_[i]
  inputs.reserve(layers_.size());
  tensor::Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    inputs.push_back(h);
    h = linear_forward(layers_[i], h);
    if (i + 1 < layers_.size()) relu_inplace(h);
  }

  // Softmax cross-entropy loss and dL/dlogits = (probs - onehot) / batch.
  tensor::Tensor probs = softmax_rows(h);
  const std::int64_t classes = probs.dim(1);
  double loss_sum = 0.0;
  tensor::Tensor delta = probs;
  auto pd = delta.data();
  for (std::int64_t i = 0; i < batch; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= classes)
      throw std::invalid_argument("Mlp::compute_gradients: label out of range");
    const float p = probs.at(i, y);
    loss_sum += -std::log(std::max(p, 1e-12F));
    pd[static_cast<std::size_t>(i * classes + y)] -= 1.0F;
  }
  delta.scale(1.0F / static_cast<float>(batch));

  // Backward through the stack.
  for (std::size_t i = layers_.size(); i-- > 0;) {
    LinearLayer& layer = layers_[i];
    // dW = delta^T * input, db = column sums of delta.
    layer.grad_w = tensor::matmul(delta, inputs[i], tensor::Transpose::kYes);
    layer.grad_b.fill(0.0F);
    const std::int64_t out = delta.dim(1);
    auto gb = layer.grad_b.data();
    auto dp = delta.data();
    for (std::int64_t r = 0; r < delta.dim(0); ++r)
      for (std::int64_t c = 0; c < out; ++c)
        gb[static_cast<std::size_t>(c)] += dp[static_cast<std::size_t>(r * out + c)];
    if (i == 0) break;
    // dInput = delta * W, gated by the previous ReLU.
    tensor::Tensor dinput = tensor::matmul(delta, layer.w);
    auto di = dinput.data();
    auto act = inputs[i].data();  // post-ReLU activations feeding this layer
    for (std::size_t j = 0; j < di.size(); ++j)
      if (act[j] <= 0.0F) di[j] = 0.0F;
    delta = std::move(dinput);
  }
  return loss_sum / static_cast<double>(batch);
}

double Mlp::loss(const tensor::Tensor& x, const std::vector<int>& labels) const {
  const tensor::Tensor probs = softmax_rows(forward(x));
  const std::int64_t batch = probs.dim(0);
  double loss_sum = 0.0;
  for (std::int64_t i = 0; i < batch; ++i)
    loss_sum += -std::log(std::max(probs.at(i, labels[static_cast<std::size_t>(i)]), 1e-12F));
  return loss_sum / static_cast<double>(batch);
}

double Mlp::accuracy(const tensor::Tensor& x, const std::vector<int>& labels) const {
  const tensor::Tensor logits = forward(x);
  const std::int64_t batch = logits.dim(0);
  const std::int64_t classes = logits.dim(1);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < batch; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < classes; ++j)
      if (logits.at(i, j) > logits.at(i, best)) best = j;
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return batch > 0 ? static_cast<double>(correct) / static_cast<double>(batch) : 0.0;
}

}  // namespace gradcomp::train
