#include "train/checkpoint.hpp"

#include <fstream>
#include <stdexcept>

#include "tensor/serial.hpp"

namespace gradcomp::train {

std::vector<std::byte> Checkpoint::serialize() const {
  tensor::ByteWriter payload;
  payload.i64(step);
  payload.u64(layer_dims.size());
  for (const auto d : layer_dims) payload.i64(d);
  payload.u64(params.size());
  for (const auto& t : params) payload.tensor(t);
  payload.f64(optimizer_lr);
  payload.u64(velocity.size());
  for (const auto& [vw, vb] : velocity) {
    payload.tensor(vw);
    payload.tensor(vb);
  }
  payload.u64(ranks.size());
  for (const auto& r : ranks) {
    payload.i64(r.rank);
    payload.blob(r.compressor_state);
  }

  const auto& body = payload.data();
  tensor::ByteWriter out;
  out.u32(kCheckpointMagic);
  out.u32(kCheckpointVersion);
  out.u64(body.size());
  out.u32(tensor::crc32(body));
  out.bytes(body);
  return out.take();
}

Checkpoint Checkpoint::deserialize(std::span<const std::byte> bytes) {
  tensor::ByteReader header(bytes, "checkpoint");
  if (header.remaining() < 20) throw std::runtime_error("checkpoint: truncated header");
  if (header.u32() != kCheckpointMagic)
    throw std::runtime_error("checkpoint: bad magic (not a checkpoint file)");
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion)
    throw std::runtime_error("checkpoint: unsupported version " + std::to_string(version));
  const std::uint64_t payload_len = header.u64();
  const std::uint32_t expected_crc = header.u32();
  if (header.remaining() != payload_len)
    throw std::runtime_error("checkpoint: truncated payload (header declares " +
                             std::to_string(payload_len) + " bytes, file has " +
                             std::to_string(header.remaining()) + ")");
  const auto payload = bytes.subspan(bytes.size() - payload_len);
  if (tensor::crc32(payload) != expected_crc)
    throw std::runtime_error("checkpoint: CRC mismatch (corrupted payload)");

  tensor::ByteReader reader(payload, "checkpoint payload");
  Checkpoint ck;
  ck.step = reader.i64();
  const std::uint64_t n_dims = reader.u64();
  ck.layer_dims.reserve(n_dims);
  for (std::uint64_t i = 0; i < n_dims; ++i) ck.layer_dims.push_back(reader.i64());
  const std::uint64_t n_params = reader.u64();
  ck.params.reserve(n_params);
  for (std::uint64_t i = 0; i < n_params; ++i) ck.params.push_back(reader.tensor());
  ck.optimizer_lr = reader.f64();
  const std::uint64_t n_velocity = reader.u64();
  ck.velocity.reserve(n_velocity);
  for (std::uint64_t i = 0; i < n_velocity; ++i) {
    auto vw = reader.tensor();
    auto vb = reader.tensor();
    ck.velocity.emplace_back(std::move(vw), std::move(vb));
  }
  const std::uint64_t n_ranks = reader.u64();
  ck.ranks.reserve(n_ranks);
  for (std::uint64_t i = 0; i < n_ranks; ++i) {
    RankState rs;
    rs.rank = static_cast<int>(reader.i64());
    rs.compressor_state = reader.blob();
    ck.ranks.push_back(std::move(rs));
  }
  reader.expect_done();
  return ck;
}

void Checkpoint::save(const std::string& path) const {
  const auto bytes = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("checkpoint: write failed for " + path);
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("checkpoint: read failed for " + path);
  return deserialize(bytes);
}

}  // namespace gradcomp::train
