#include "train/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "tensor/serial.hpp"

namespace gradcomp::train {

namespace {

// Byte offsets of the header fields, for error context.
constexpr std::uint64_t kMagicOffset = 0;
constexpr std::uint64_t kVersionOffset = 4;
constexpr std::uint64_t kPayloadLenOffset = 8;
constexpr std::uint64_t kHeaderSize = 20;

std::string error_context(const std::string& path, std::uint64_t offset) {
  std::string ctx;
  if (!path.empty()) ctx += " [" + path + "]";
  ctx += " (at byte offset " + std::to_string(offset) + ")";
  return ctx;
}

// Flushes user-space and kernel buffers for a just-written file so the
// atomic rename below publishes bytes that are actually on disk.
void flush_to_disk(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0)
    throw CheckpointError("checkpoint: flush failed", path, 0);
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(::fileno(file)) != 0)
    throw CheckpointError("checkpoint: fsync failed", path, 0);
#endif
}

// Durability for the rename itself: fsync the containing directory
// (best-effort — some filesystems refuse directory handles).
void sync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const auto parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

CheckpointError::CheckpointError(const std::string& what, std::string path,
                                 std::uint64_t offset, std::uint32_t crc_expected,
                                 std::uint32_t crc_actual)
    : std::runtime_error(what + error_context(path, offset)),
      path_(std::move(path)),
      offset_(offset),
      crc_expected_(crc_expected),
      crc_actual_(crc_actual) {}

std::vector<std::byte> Checkpoint::serialize() const {
  tensor::ByteWriter payload;
  payload.i64(step);
  payload.u64(layer_dims.size());
  for (const auto d : layer_dims) payload.i64(d);
  payload.u64(params.size());
  for (const auto& t : params) payload.tensor(t);
  payload.f64(optimizer_lr);
  payload.u64(velocity.size());
  for (const auto& [vw, vb] : velocity) {
    payload.tensor(vw);
    payload.tensor(vb);
  }
  payload.u64(ranks.size());
  for (const auto& r : ranks) {
    payload.i64(r.rank);
    payload.blob(r.compressor_state);
  }

  const auto& body = payload.data();
  tensor::ByteWriter out;
  out.u32(kCheckpointMagic);
  out.u32(kCheckpointVersion);
  out.u64(body.size());
  out.u32(tensor::crc32(body));
  out.bytes(body);
  return out.take();
}

Checkpoint Checkpoint::deserialize(std::span<const std::byte> bytes, const std::string& path) {
  tensor::ByteReader header(bytes, "checkpoint");
  if (header.remaining() < kHeaderSize)
    throw CheckpointError("checkpoint: truncated header", path, header.remaining());
  if (header.u32() != kCheckpointMagic)
    throw CheckpointError("checkpoint: bad magic (not a checkpoint file)", path, kMagicOffset);
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion)
    throw CheckpointError("checkpoint: unsupported version " + std::to_string(version), path,
                          kVersionOffset);
  const std::uint64_t payload_len = header.u64();
  const std::uint32_t expected_crc = header.u32();
  if (header.remaining() != payload_len)
    throw CheckpointError("checkpoint: truncated payload (header declares " +
                              std::to_string(payload_len) + " bytes, file has " +
                              std::to_string(header.remaining()) + ")",
                          path, kPayloadLenOffset);
  const auto payload = bytes.subspan(bytes.size() - payload_len);
  const std::uint32_t actual_crc = tensor::crc32(payload);
  if (actual_crc != expected_crc)
    throw CheckpointError("checkpoint: CRC mismatch (corrupted payload)", path, kHeaderSize,
                          expected_crc, actual_crc);

  tensor::ByteReader reader(payload, "checkpoint payload");
  try {
    Checkpoint ck;
    ck.step = reader.i64();
    const std::uint64_t n_dims = reader.u64();
    ck.layer_dims.reserve(n_dims);
    for (std::uint64_t i = 0; i < n_dims; ++i) ck.layer_dims.push_back(reader.i64());
    const std::uint64_t n_params = reader.u64();
    ck.params.reserve(n_params);
    for (std::uint64_t i = 0; i < n_params; ++i) ck.params.push_back(reader.tensor());
    ck.optimizer_lr = reader.f64();
    const std::uint64_t n_velocity = reader.u64();
    ck.velocity.reserve(n_velocity);
    for (std::uint64_t i = 0; i < n_velocity; ++i) {
      auto vw = reader.tensor();
      auto vb = reader.tensor();
      ck.velocity.emplace_back(std::move(vw), std::move(vb));
    }
    const std::uint64_t n_ranks = reader.u64();
    ck.ranks.reserve(n_ranks);
    for (std::uint64_t i = 0; i < n_ranks; ++i) {
      RankState rs;
      rs.rank = static_cast<int>(reader.i64());
      rs.compressor_state = reader.blob();
      ck.ranks.push_back(std::move(rs));
    }
    reader.expect_done();
    return ck;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    // A CRC-clean payload that still fails to parse (a format bug, not
    // corruption): report where in the file the parse stopped.
    throw CheckpointError(e.what(), path, kHeaderSize + (payload_len - reader.remaining()));
  }
}

void Checkpoint::save(const std::string& path) const {
  const auto bytes = serialize();
  // Crash consistency: write a temp sibling (same directory, so the rename
  // stays within one filesystem), force it to disk, then atomically rename
  // over the target. A crash at any point leaves `path` as either the old
  // complete checkpoint or the new complete one.
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr)
    throw CheckpointError("checkpoint: cannot open temp file for writing", tmp, 0);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  if (written != bytes.size()) {
    std::fclose(file);
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: short write", tmp, written);
  }
  try {
    flush_to_disk(file, tmp);
  } catch (...) {
    std::fclose(file);
    std::remove(tmp.c_str());
    throw;
  }
  std::fclose(file);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: atomic rename failed", path, 0);
  }
  sync_parent_dir(path);
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw CheckpointError("checkpoint: cannot open", path, 0);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw CheckpointError("checkpoint: read failed", path, 0);
  return deserialize(bytes, path);
}

// ---------------------------------------------------------------------------
// CheckpointRing.

CheckpointRing::CheckpointRing(std::string dir, int capacity, std::string prefix)
    : dir_(std::move(dir)), capacity_(capacity), prefix_(std::move(prefix)) {
  if (capacity_ < 1) throw std::invalid_argument("CheckpointRing: capacity must be >= 1");
  if (prefix_.empty()) throw std::invalid_argument("CheckpointRing: prefix must be non-empty");
  std::filesystem::create_directories(dir_);
}

std::vector<std::string> CheckpointRing::snapshot_paths() const {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > prefix_.size() + 4 && name.rfind(prefix_ + "-", 0) == 0 &&
        name.ends_with(".ck"))
      paths.push_back(entry.path().string());
  }
  // Step numbers are zero-padded, so lexicographic order is save order.
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string CheckpointRing::save(const Checkpoint& ck) {
  std::string step_str = std::to_string(std::max<std::int64_t>(0, ck.step));
  if (step_str.size() < 8) step_str.insert(0, 8 - step_str.size(), '0');
  const std::string path =
      (std::filesystem::path(dir_) / (prefix_ + "-" + step_str + ".ck")).string();
  ck.save(path);
  if (post_save_hook_) post_save_hook_(path, ck.step);
  auto paths = snapshot_paths();
  for (std::size_t i = 0; i + static_cast<std::size_t>(capacity_) < paths.size(); ++i)
    std::filesystem::remove(paths[i]);
  return path;
}

Checkpoint CheckpointRing::load_latest_valid() {
  const auto paths = snapshot_paths();
  for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
    try {
      return Checkpoint::load(*it);
    } catch (const CheckpointError& e) {
      skipped_.push_back({*it, e.what()});
    }
  }
  throw CheckpointError("checkpoint ring: no valid snapshot (" +
                            std::to_string(paths.size()) + " file(s), all invalid)",
                        dir_, 0);
}

void corrupt_file(const std::string& path, std::uint64_t offset, CorruptionKind kind) {
  if (kind == CorruptionKind::kTruncate) {
    std::error_code ec;
    std::filesystem::resize_file(path, offset, ec);
    if (ec) throw CheckpointError("corrupt_file: truncate failed", path, offset);
    return;
  }
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!file) throw CheckpointError("corrupt_file: cannot open", path, offset);
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  if (!file.read(&byte, 1))
    throw CheckpointError("corrupt_file: offset past end of file", path, offset);
  byte = static_cast<char>(byte ^ 0x01);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  if (!file) throw CheckpointError("corrupt_file: write failed", path, offset);
}

}  // namespace gradcomp::train
