#include "train/conv.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/linalg.hpp"
#include "tensor/rng.hpp"

namespace gradcomp::train {

namespace {

void require_4d(const tensor::Tensor& t, const char* who) {
  if (t.ndim() != 4) throw std::invalid_argument(std::string(who) + ": expected a 4-D tensor");
}

// {B, out, OH, OW} <-> {out, B*OH*OW} rearrangements.
tensor::Tensor to_channel_major(const tensor::Tensor& t) {
  const std::int64_t b = t.dim(0);
  const std::int64_t c = t.dim(1);
  const std::int64_t h = t.dim(2);
  const std::int64_t w = t.dim(3);
  tensor::Tensor out({c, b * h * w});
  auto src = t.data();
  auto dst = out.data();
  for (std::int64_t bi = 0; bi < b; ++bi)
    for (std::int64_t ci = 0; ci < c; ++ci)
      for (std::int64_t i = 0; i < h * w; ++i)
        dst[static_cast<std::size_t>(ci * b * h * w + bi * h * w + i)] =
            src[static_cast<std::size_t>(((bi * c) + ci) * h * w + i)];
  return out;
}

tensor::Tensor from_channel_major(const tensor::Tensor& t, std::int64_t b, std::int64_t h,
                                  std::int64_t w) {
  const std::int64_t c = t.dim(0);
  tensor::Tensor out({b, c, h, w});
  auto src = t.data();
  auto dst = out.data();
  for (std::int64_t bi = 0; bi < b; ++bi)
    for (std::int64_t ci = 0; ci < c; ++ci)
      for (std::int64_t i = 0; i < h * w; ++i)
        dst[static_cast<std::size_t>(((bi * c) + ci) * h * w + i)] =
            src[static_cast<std::size_t>(ci * b * h * w + bi * h * w + i)];
  return out;
}

}  // namespace

tensor::Tensor im2col(const tensor::Tensor& input, const ConvSpec& spec) {
  require_4d(input, "im2col");
  const std::int64_t b = input.dim(0);
  const std::int64_t c = input.dim(1);
  const std::int64_t h = input.dim(2);
  const std::int64_t w = input.dim(3);
  if (c != spec.in_channels) throw std::invalid_argument("im2col: channel mismatch");
  const std::int64_t oh = spec.out_size(h);
  const std::int64_t ow = spec.out_size(w);
  if (oh < 1 || ow < 1) throw std::invalid_argument("im2col: kernel larger than padded input");

  const std::int64_t k = spec.kernel;
  tensor::Tensor cols({c * k * k, b * oh * ow});
  auto src = input.data();
  auto dst = cols.data();
  const std::int64_t col_count = b * oh * ow;
  for (std::int64_t ci = 0; ci < c; ++ci) {
    for (std::int64_t kh = 0; kh < k; ++kh) {
      for (std::int64_t kw = 0; kw < k; ++kw) {
        const std::int64_t row = (ci * k + kh) * k + kw;
        for (std::int64_t bi = 0; bi < b; ++bi) {
          for (std::int64_t ohi = 0; ohi < oh; ++ohi) {
            const std::int64_t hi = ohi * spec.stride + kh - spec.padding;
            for (std::int64_t owi = 0; owi < ow; ++owi) {
              const std::int64_t wi = owi * spec.stride + kw - spec.padding;
              const std::int64_t col = (bi * oh + ohi) * ow + owi;
              float value = 0.0F;
              if (hi >= 0 && hi < h && wi >= 0 && wi < w)
                value = src[static_cast<std::size_t>(((bi * c + ci) * h + hi) * w + wi)];
              dst[static_cast<std::size_t>(row * col_count + col)] = value;
            }
          }
        }
      }
    }
  }
  return cols;
}

tensor::Tensor col2im(const tensor::Tensor& columns, const ConvSpec& spec,
                      const tensor::Shape& input_shape) {
  if (input_shape.size() != 4) throw std::invalid_argument("col2im: expected 4-D input shape");
  const std::int64_t b = input_shape[0];
  const std::int64_t c = input_shape[1];
  const std::int64_t h = input_shape[2];
  const std::int64_t w = input_shape[3];
  const std::int64_t oh = spec.out_size(h);
  const std::int64_t ow = spec.out_size(w);
  const std::int64_t k = spec.kernel;
  if (columns.dim(0) != c * k * k || columns.dim(1) != b * oh * ow)
    throw std::invalid_argument("col2im: column shape mismatch");

  tensor::Tensor out({b, c, h, w});
  auto src = columns.data();
  auto dst = out.data();
  const std::int64_t col_count = b * oh * ow;
  for (std::int64_t ci = 0; ci < c; ++ci) {
    for (std::int64_t kh = 0; kh < k; ++kh) {
      for (std::int64_t kw = 0; kw < k; ++kw) {
        const std::int64_t row = (ci * k + kh) * k + kw;
        for (std::int64_t bi = 0; bi < b; ++bi) {
          for (std::int64_t ohi = 0; ohi < oh; ++ohi) {
            const std::int64_t hi = ohi * spec.stride + kh - spec.padding;
            if (hi < 0 || hi >= h) continue;
            for (std::int64_t owi = 0; owi < ow; ++owi) {
              const std::int64_t wi = owi * spec.stride + kw - spec.padding;
              if (wi < 0 || wi >= w) continue;
              const std::int64_t col = (bi * oh + ohi) * ow + owi;
              dst[static_cast<std::size_t>(((bi * c + ci) * h + hi) * w + wi)] +=
                  src[static_cast<std::size_t>(row * col_count + col)];
            }
          }
        }
      }
    }
  }
  return out;
}

Conv2d::Conv2d(ConvSpec spec, std::uint64_t seed)
    : spec_(spec),
      weight_({spec.out_channels, spec.in_channels, spec.kernel, spec.kernel}),
      bias_({spec.out_channels}),
      grad_weight_(weight_.shape()),
      grad_bias_(bias_.shape()) {
  if (spec.in_channels < 1 || spec.out_channels < 1 || spec.kernel < 1 || spec.stride < 1 ||
      spec.padding < 0)
    throw std::invalid_argument("Conv2d: invalid spec");
  tensor::Rng rng(seed);
  weight_ = tensor::Tensor::randn(weight_.shape(), rng);
  const double fan_in =
      static_cast<double>(spec.in_channels * spec.kernel * spec.kernel);
  weight_.scale(static_cast<float>(std::sqrt(2.0 / fan_in)));
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& input) {
  require_4d(input, "Conv2d::forward");
  cached_input_shape_ = input.shape();
  cached_cols_ = im2col(input, spec_);

  // {out, C*k*k} x {C*k*k, B*OH*OW}.
  const tensor::Tensor w_mat = weight_.reshape({spec_.out_channels, -1});
  tensor::Tensor out_mat = tensor::matmul(w_mat, cached_cols_);
  auto po = out_mat.data();
  auto pb = bias_.data();
  const std::int64_t cols = out_mat.dim(1);
  for (std::int64_t o = 0; o < spec_.out_channels; ++o)
    for (std::int64_t j = 0; j < cols; ++j)
      po[static_cast<std::size_t>(o * cols + j)] += pb[static_cast<std::size_t>(o)];

  const std::int64_t b = input.dim(0);
  const std::int64_t oh = spec_.out_size(input.dim(2));
  const std::int64_t ow = spec_.out_size(input.dim(3));
  return from_channel_major(out_mat, b, oh, ow);
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_output) {
  require_4d(grad_output, "Conv2d::backward");
  if (cached_input_shape_.empty())
    throw std::logic_error("Conv2d::backward: forward() must run first");

  const tensor::Tensor grad_mat = to_channel_major(grad_output);  // {out, B*OH*OW}

  // dW = dOut * cols^T, db = row sums of dOut.
  grad_weight_ =
      tensor::matmul(grad_mat, cached_cols_, tensor::Transpose::kNo, tensor::Transpose::kYes)
          .reshape(weight_.shape());
  grad_bias_.fill(0.0F);
  auto gb = grad_bias_.data();
  auto gm = grad_mat.data();
  const std::int64_t cols = grad_mat.dim(1);
  for (std::int64_t o = 0; o < spec_.out_channels; ++o) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < cols; ++j)
      sum += gm[static_cast<std::size_t>(o * cols + j)];
    gb[static_cast<std::size_t>(o)] = static_cast<float>(sum);
  }

  // dInput = col2im(W^T * dOut).
  const tensor::Tensor w_mat = weight_.reshape({spec_.out_channels, -1});
  const tensor::Tensor dcols =
      tensor::matmul(w_mat, grad_mat, tensor::Transpose::kYes, tensor::Transpose::kNo);
  return col2im(dcols, spec_, cached_input_shape_);
}

}  // namespace gradcomp::train
