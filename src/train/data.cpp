#include "train/data.hpp"

#include <stdexcept>

#include "tensor/rng.hpp"

namespace gradcomp::train {

Dataset make_blobs(std::int64_t classes, std::int64_t dim, std::int64_t per_class, float spread,
                   std::uint64_t seed) {
  if (classes < 2 || dim < 1 || per_class < 1)
    throw std::invalid_argument("make_blobs: need classes >= 2, dim >= 1, per_class >= 1");
  tensor::Rng rng(seed);

  // Well-separated random centers.
  std::vector<std::vector<float>> centers(static_cast<std::size_t>(classes),
                                          std::vector<float>(static_cast<std::size_t>(dim)));
  for (auto& center : centers)
    for (auto& coord : center) coord = rng.uniform(-4.0F, 4.0F);

  const std::int64_t n = classes * per_class;
  Dataset data;
  data.classes = classes;
  data.x = tensor::Tensor({n, dim});
  data.y.resize(static_cast<std::size_t>(n));
  auto px = data.x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::size_t>(i % classes);
    data.y[static_cast<std::size_t>(i)] = static_cast<int>(cls);
    for (std::int64_t d = 0; d < dim; ++d)
      px[static_cast<std::size_t>(i * dim + d)] =
          centers[cls][static_cast<std::size_t>(d)] + spread * rng.gaussian();
  }
  return data;
}

Dataset shard(const Dataset& full, int rank, int world_size) {
  if (world_size < 1 || rank < 0 || rank >= world_size)
    throw std::invalid_argument("shard: invalid rank/world_size");
  const std::int64_t n = full.size();
  const std::int64_t dim = full.dim();
  std::vector<float> xs;
  std::vector<int> ys;
  auto px = full.x.data();
  for (std::int64_t i = rank; i < n; i += world_size) {
    xs.insert(xs.end(), px.begin() + i * dim, px.begin() + (i + 1) * dim);
    ys.push_back(full.y[static_cast<std::size_t>(i)]);
  }
  Dataset out;
  out.classes = full.classes;
  out.y = std::move(ys);
  out.x = tensor::Tensor({static_cast<std::int64_t>(out.y.size()), dim}, std::move(xs));
  return out;
}

Dataset batch(const Dataset& data, std::int64_t index, std::int64_t batch_size) {
  if (batch_size < 1) throw std::invalid_argument("batch: batch_size must be >= 1");
  const std::int64_t n = data.size();
  if (n == 0) throw std::invalid_argument("batch: empty dataset");
  const std::int64_t dim = data.dim();
  Dataset out;
  out.classes = data.classes;
  out.x = tensor::Tensor({batch_size, dim});
  out.y.resize(static_cast<std::size_t>(batch_size));
  auto src = data.x.data();
  auto dst = out.x.data();
  for (std::int64_t j = 0; j < batch_size; ++j) {
    const std::int64_t i = (index * batch_size + j) % n;
    std::copy(src.begin() + i * dim, src.begin() + (i + 1) * dim, dst.begin() + j * dim);
    out.y[static_cast<std::size_t>(j)] = data.y[static_cast<std::size_t>(i)];
  }
  return out;
}

}  // namespace gradcomp::train
