#include "train/trainer.hpp"

#include <algorithm>
#include <stdexcept>

namespace gradcomp::train {

DataParallelTrainer::DataParallelTrainer(TrainerConfig config, Dataset dataset)
    : config_(std::move(config)), dataset_(std::move(dataset)), comm_(config_.world_size) {
  if (config_.world_size < 1)
    throw std::invalid_argument("DataParallelTrainer: world_size must be >= 1");
  if (dataset_.size() < config_.world_size)
    throw std::invalid_argument("DataParallelTrainer: dataset smaller than world size");
  if (config_.layer_dims.front() != dataset_.dim() ||
      config_.layer_dims.back() != dataset_.classes)
    throw std::invalid_argument(
        "DataParallelTrainer: layer_dims must start at data dim and end at class count");

  shards_.reserve(static_cast<std::size_t>(config_.world_size));
  models_.reserve(static_cast<std::size_t>(config_.world_size));
  compressors_.reserve(static_cast<std::size_t>(config_.world_size));
  optimizers_.reserve(static_cast<std::size_t>(config_.world_size));
  for (int r = 0; r < config_.world_size; ++r) {
    shards_.push_back(shard(dataset_, r, config_.world_size));
    // Same seed everywhere: replicas start identical.
    models_.emplace_back(config_.layer_dims, config_.seed);
    compressors_.push_back(compress::make_compressor(config_.compression));
    optimizers_.emplace_back(config_.optimizer);
  }
}

StepStats DataParallelTrainer::step() {
  const auto p = static_cast<std::size_t>(config_.world_size);
  std::vector<double> losses(p, 0.0);
  std::vector<compress::AggregateStats> agg(p);

  comm::run_ranks(config_.world_size, [&](int rank) {
    const auto r = static_cast<std::size_t>(rank);
    const Dataset local = batch(shards_[r], step_count_, config_.batch_per_worker);
    losses[r] = models_[r].compute_gradients(local.x, local.y);

    auto& layers = models_[r].layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
      agg[r] += compressors_[r]->aggregate(static_cast<compress::LayerId>(2 * i), rank, comm_,
                                           layers[i].grad_w);
      agg[r] += compressors_[r]->aggregate(static_cast<compress::LayerId>(2 * i + 1), rank,
                                           comm_, layers[i].grad_b);
    }
    optimizers_[r].step(models_[r]);
  });
  ++step_count_;

  StepStats stats;
  for (double l : losses) stats.mean_local_loss += l;
  stats.mean_local_loss /= static_cast<double>(p);
  stats.bytes_per_worker = agg[0].bytes_sent;
  for (const auto& a : agg) {
    stats.encode_seconds += a.encode_seconds;
    stats.decode_seconds += a.decode_seconds;
  }
  stats.encode_seconds /= static_cast<double>(p);
  stats.decode_seconds /= static_cast<double>(p);
  history_.push_back(stats);
  return stats;
}

std::vector<double> DataParallelTrainer::train(int steps) {
  std::vector<double> losses;
  losses.reserve(static_cast<std::size_t>(std::max(steps, 0)));
  for (int i = 0; i < steps; ++i) losses.push_back(step().mean_local_loss);
  return losses;
}

double DataParallelTrainer::loss() const { return models_.front().loss(dataset_.x, dataset_.y); }

double DataParallelTrainer::accuracy() const {
  return models_.front().accuracy(dataset_.x, dataset_.y);
}

double DataParallelTrainer::evaluate_loss(const Dataset& data) const {
  return models_.front().loss(data.x, data.y);
}

double DataParallelTrainer::evaluate_accuracy(const Dataset& data) const {
  return models_.front().accuracy(data.x, data.y);
}

std::size_t DataParallelTrainer::total_bytes_per_worker() const {
  std::size_t total = 0;
  for (const auto& s : history_) total += s.bytes_per_worker;
  return total;
}

double DataParallelTrainer::replica_divergence() const {
  double divergence = 0.0;
  const auto& reference = models_.front().layers();
  for (std::size_t r = 1; r < models_.size(); ++r) {
    const auto& layers = models_[r].layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
      divergence = std::max(divergence, tensor::max_abs_diff(reference[i].w, layers[i].w));
      divergence = std::max(divergence, tensor::max_abs_diff(reference[i].b, layers[i].b));
    }
  }
  return divergence;
}

}  // namespace gradcomp::train
