#include "train/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "compress/registry.hpp"
#include "core/perf_model.hpp"
#include "tensor/serial.hpp"

namespace gradcomp::train {

DataParallelTrainer::DataParallelTrainer(TrainerConfig config, Dataset dataset)
    : config_(std::move(config)),
      dataset_(std::move(dataset)),
      comm_(config_.world_size, config_.comm_timeout) {
  if (config_.world_size < 1)
    throw std::invalid_argument("DataParallelTrainer: world_size must be >= 1");
  if (dataset_.size() < config_.world_size)
    throw std::invalid_argument("DataParallelTrainer: dataset smaller than world size");
  if (config_.layer_dims.front() != dataset_.dim() ||
      config_.layer_dims.back() != dataset_.classes)
    throw std::invalid_argument(
        "DataParallelTrainer: layer_dims must start at data dim and end at class count");
  if (config_.checkpoint_every < 0)
    throw std::invalid_argument("DataParallelTrainer: checkpoint_every must be >= 0");
  if (!config_.fault_plan.empty() && config_.fault_plan.world_size() != config_.world_size)
    throw std::invalid_argument("DataParallelTrainer: fault_plan world size (" +
                                std::to_string(config_.fault_plan.world_size()) +
                                ") != world_size (" + std::to_string(config_.world_size) + ")");

  active_compression_ = config_.compression;
  shards_.reserve(static_cast<std::size_t>(config_.world_size));
  models_.reserve(static_cast<std::size_t>(config_.world_size));
  compressors_.reserve(static_cast<std::size_t>(config_.world_size));
  optimizers_.reserve(static_cast<std::size_t>(config_.world_size));
  for (int r = 0; r < config_.world_size; ++r) {
    shards_.push_back(shard(dataset_, r, config_.world_size));
    // Same seed everywhere: replicas start identical.
    models_.emplace_back(config_.layer_dims, config_.seed);
    compressors_.push_back(compress::make_compressor(active_compression_));
    optimizers_.emplace_back(config_.optimizer);
  }

  if (config_.adaptive.enabled) {
    core::Cluster prior = config_.adaptive.cluster;
    prior.world_size = config_.world_size;
    adapt::ControllerOptions opts = config_.adaptive.controller;
    opts.initial = {compress::config_to_string(active_compression_), active_compression_};
    controller_ = std::make_unique<adapt::Controller>(config_.adaptive.workload, prior,
                                                      std::move(opts));
    running_label_ = controller_->current().label;
  }
}

StepStats DataParallelTrainer::step() {
  const auto n = static_cast<std::size_t>(config_.world_size);
  for (;;) {
    maybe_rejoin();
    const std::vector<int> active = comm_.active_ranks();
    std::vector<double> losses(n, 0.0);
    std::vector<compress::AggregateStats> agg(n);
    std::vector<double> backward_s(n, 0.0);
    std::vector<double> agg_wall_s(n, 0.0);
    {
      const core::sync::LockGuard lock(shared_mu_);
      step_failure_seen_ = false;
    }
    // The plan kills at most one rank per iteration; a dead rank is no
    // longer in `active`, so a retried or rewound step cannot re-kill it.
    const int doomed = config_.fault_plan.empty()
                           ? -1
                           : config_.fault_plan.failed_rank_at(static_cast<int>(step_count_));

    comm::run_ranks(active, [&](int rank) {
      const auto r = static_cast<std::size_t>(rank);
      try {
        if (rank == doomed) {
          // Scheduled death: declare it and stop participating. Peers see
          // RankFailure at this step's first collective.
          comm_.fail(rank);
          return;
        }
        const Dataset local = batch(shards_[r], step_count_, config_.batch_per_worker);
        const auto t0 = std::chrono::steady_clock::now();
        losses[r] = models_[r].compute_gradients(local.x, local.y);
        const auto t1 = std::chrono::steady_clock::now();

        auto& layers = models_[r].layers();
        for (std::size_t i = 0; i < layers.size(); ++i) {
          agg[r] += compressors_[r]->aggregate(static_cast<compress::LayerId>(2 * i), rank,
                                               comm_, layers[i].grad_w);
          agg[r] += compressors_[r]->aggregate(static_cast<compress::LayerId>(2 * i + 1), rank,
                                               comm_, layers[i].grad_b);
        }
        const auto t2 = std::chrono::steady_clock::now();
        backward_s[r] = std::chrono::duration<double>(t1 - t0).count();
        agg_wall_s[r] = std::chrono::duration<double>(t2 - t1).count();
        optimizers_[r].step(models_[r]);
      } catch (const comm::RankFailure&) {
        // Consistent unwind: every survivor throws at the same collective,
        // before any optimizer update. Reap the dead and retry the step.
        // shrink() has returned (and released the group lock) before the
        // trainer lock is taken — kTrainerShared is the TOP rank, so taking
        // it the other way around would throw LockOrderError.
        comm_.shrink(rank);
        const core::sync::LockGuard lock(shared_mu_);
        step_failure_seen_ = true;
      }
    });

    if ([&] {
          const core::sync::LockGuard lock(shared_mu_);
          return step_failure_seen_;
        }()) {
      recover(active);
      continue;  // retry (possibly after a checkpoint rewind)
    }

    ++step_count_;
    StepStats stats;
    stats.active_workers = static_cast<int>(active.size());
    double step_wall_s = 0.0;
    for (const int rank : active) {
      const auto r = static_cast<std::size_t>(rank);
      stats.mean_local_loss += losses[r];
      stats.encode_seconds += agg[r].encode_seconds;
      stats.decode_seconds += agg[r].decode_seconds;
      stats.backward_seconds = std::max(stats.backward_seconds, backward_s[r]);
      // Collective time = wall time in the aggregate phase minus the time
      // this rank spent inside its own encode/decode kernels.
      stats.comm_seconds =
          std::max(stats.comm_seconds,
                   agg_wall_s[r] - agg[r].encode_seconds - agg[r].decode_seconds);
      step_wall_s = std::max(step_wall_s, backward_s[r] + agg_wall_s[r]);
    }
    stats.comm_seconds = std::max(stats.comm_seconds, 0.0);
    const auto p = static_cast<double>(active.size());
    stats.mean_local_loss /= p;
    stats.encode_seconds /= p;
    stats.decode_seconds /= p;
    stats.bytes_per_worker = agg[static_cast<std::size_t>(active.front())].bytes_sent;
    history_.push_back(stats);

    if (config_.checkpoint_every > 0 && step_count_ % config_.checkpoint_every == 0) {
      last_checkpoint_ = make_checkpoint();
      has_checkpoint_ = true;
    }
    feed_controller(stats, step_wall_s);
    return stats;
  }
}

void DataParallelTrainer::feed_controller(const StepStats& stats, double step_wall_s) {
  clock_s_ += step_wall_s;
  if (!controller_) return;

  adapt::Observation o;
  o.wire_bytes = adapt::Bytes{static_cast<double>(stats.bytes_per_worker)};
  o.collective = adapt::Seconds{stats.comm_seconds};
  o.backward = adapt::Seconds{stats.backward_seconds};
  // Nominal backward time of the MODELED workload on the prior device: the
  // stretch estimate rescales the advisor's device just like the bandwidth
  // estimate rescales its network.
  const core::PerfModel model;
  core::Cluster prior = config_.adaptive.cluster;
  prior.world_size = std::max(stats.active_workers, 1);
  o.nominal_backward =
      model.compressed(active_compression_, config_.adaptive.workload, prior).compute;
  o.world_size = stats.active_workers;
  o.shape = adapt::collective_shape(active_compression_, config_.adaptive.workload.model,
                                    config_.adaptive.workload.bucket_bytes);

  const auto decision = controller_->observe(o);
  if (!decision) return;
  timeline_.add("adapt", running_label_ + ": " + decision->reason,
                adapt::Seconds{window_start_s_}, adapt::Seconds{clock_s_});
  window_start_s_ = clock_s_;
  if (decision->switched) {
    active_compression_ = decision->chosen.config;
    // Live swap between steps: fresh compressors mean fresh error-feedback /
    // warm-start state (the schemes' state spaces are incompatible), and a
    // held checkpoint's compressor blobs no longer apply to the new scheme —
    // drop them so a rewind warm-starts cleanly instead of deserializing a
    // mismatched blob.
    for (const int rank : comm_.active_ranks())
      compressors_[static_cast<std::size_t>(rank)] =
          compress::make_compressor(active_compression_);
    if (has_checkpoint_)
      for (auto& rs : last_checkpoint_.ranks) rs.compressor_state.clear();
  }
  running_label_ = controller_->current().label;
}

std::vector<adapt::Decision> DataParallelTrainer::decisions() const {
  return controller_ ? controller_->decisions() : std::vector<adapt::Decision>{};
}

void DataParallelTrainer::recover(const std::vector<int>& before) {
  const std::vector<int> after = comm_.active_ranks();
  FailureRecord record;
  record.step = step_count_;
  for (const int rank : before)
    if (std::find(after.begin(), after.end(), rank) == after.end())
      record.failed_ranks.push_back(rank);

  if (config_.recovery == RecoveryPolicy::kRestoreCheckpoint && has_checkpoint_) {
    record.action = RecoveryPolicy::kRestoreCheckpoint;
    restore(last_checkpoint_);
  } else {
    record.action = RecoveryPolicy::kShrinkContinue;
  }
  record.resumed_at_step = step_count_;
  failures_.push_back(std::move(record));
}

void DataParallelTrainer::maybe_rejoin() {
  if (config_.fault_plan.empty()) return;
  std::vector<int> joiners;
  for (const int r : config_.fault_plan.rejoining_ranks_at(static_cast<int>(step_count_)))
    // After a checkpoint rewind this step may run again with the rank
    // already re-admitted; the window fires exactly once.
    if (!comm_.is_active(r)) joiners.push_back(r);
  if (joiners.empty()) return;

  const std::vector<int> survivors = comm_.active_ranks();
  const int root = survivors.front();
  std::vector<int> participants = survivors;
  participants.insert(participants.end(), joiners.begin(), joiners.end());
  std::sort(participants.begin(), participants.end());

  const auto t0 = std::chrono::steady_clock::now();
  {
    const core::sync::LockGuard lock(shared_mu_);
    pending_resync_bytes_ = 0;
  }
  comm::run_ranks(participants, [&](int rank) {
    const bool joining = std::find(joiners.begin(), joiners.end(), rank) != joiners.end();
    if (joining) {
      comm_.rejoin(rank);
    } else {
      comm_.grow(rank, joiners);
    }
    // In-band state resync: the first survivor serializes params + optimizer
    // + shared compressor state and broadcasts it to the whole (re-expanded)
    // group; only the joiners install it.
    std::vector<std::byte> blob;
    if (rank == root) {
      blob = serialize_resync(root);
      const core::sync::LockGuard lock(shared_mu_);
      pending_resync_bytes_ = blob.size();
    }
    comm_.broadcast_bytes(rank, root, blob);
    if (joining) apply_resync(rank, blob);
  });
  const double resync_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  RejoinRecord record;
  record.step = step_count_;
  record.rejoined_ranks = joiners;
  {
    const core::sync::LockGuard lock(shared_mu_);
    record.resync_bytes = pending_resync_bytes_;
  }
  // One "rejoin" span per re-admitted rank; the group rebuild + resync
  // advances the trainer's wall clock like any other work (keeping later
  // "adapt" windows contiguous).
  for (const int r : joiners)
    timeline_.add("rejoin",
                  "rank " + std::to_string(r) + " rejoin: resync " +
                      std::to_string(record.resync_bytes) + " B",
                  adapt::Seconds{clock_s_}, adapt::Seconds{clock_s_ + resync_s});
  clock_s_ += resync_s;
  rejoins_.push_back(std::move(record));
}

std::vector<std::byte> DataParallelTrainer::serialize_resync(int root) const {
  const auto r = static_cast<std::size_t>(root);
  tensor::ByteWriter writer;
  const auto& layers = models_[r].layers();
  writer.u64(layers.size() * 2);
  for (const auto& layer : layers) {
    writer.tensor(layer.w);
    writer.tensor(layer.b);
  }
  writer.f64(optimizers_[r].current_lr());
  const auto velocity = optimizers_[r].velocity();
  writer.u64(velocity.size());
  for (const auto& [vw, vb] : velocity) {
    writer.tensor(vw);
    writer.tensor(vb);
  }
  writer.blob(compressors_[r]->serialize_shared_state());
  return writer.take();
}

void DataParallelTrainer::apply_resync(int rank, std::span<const std::byte> blob) {
  const auto r = static_cast<std::size_t>(rank);
  tensor::ByteReader reader(blob, "rejoin resync");
  auto& layers = models_[r].layers();
  const std::uint64_t n_params = reader.u64();
  if (n_params != layers.size() * 2)
    throw std::runtime_error("rejoin resync: parameter count mismatch");
  for (auto& layer : layers) {
    layer.w = reader.tensor();
    layer.b = reader.tensor();
  }
  const double lr = reader.f64();
  const std::uint64_t n_velocity = reader.u64();
  std::vector<std::pair<tensor::Tensor, tensor::Tensor>> velocity;
  velocity.reserve(n_velocity);
  for (std::uint64_t i = 0; i < n_velocity; ++i) {
    auto vw = reader.tensor();
    auto vb = reader.tensor();
    velocity.emplace_back(std::move(vw), std::move(vb));
  }
  optimizers_[r].set_state(lr, velocity);
  const auto shared = reader.blob();
  reader.expect_done();
  // Fresh compressor under the live scheme: zero error feedback (stale
  // residuals from the rank's past life must NOT be reintroduced), then the
  // shared state every rank must agree on (RandomK round counters, PowerSGD
  // warm-start Q).
  compressors_[r] = compress::make_compressor(active_compression_);
  if (!shared.empty()) compressors_[r]->restore_shared_state(shared);
}

std::vector<double> DataParallelTrainer::train(int steps) {
  std::vector<double> losses;
  losses.reserve(static_cast<std::size_t>(std::max(steps, 0)));
  const std::int64_t target = step_count_ + steps;
  while (step_count_ < target) losses.push_back(step().mean_local_loss);
  return losses;
}

double DataParallelTrainer::loss() const {
  return models_[static_cast<std::size_t>(comm_.active_ranks().front())].loss(dataset_.x,
                                                                              dataset_.y);
}

double DataParallelTrainer::accuracy() const {
  return models_[static_cast<std::size_t>(comm_.active_ranks().front())].accuracy(dataset_.x,
                                                                                  dataset_.y);
}

double DataParallelTrainer::evaluate_loss(const Dataset& data) const {
  return models_[static_cast<std::size_t>(comm_.active_ranks().front())].loss(data.x, data.y);
}

double DataParallelTrainer::evaluate_accuracy(const Dataset& data) const {
  return models_[static_cast<std::size_t>(comm_.active_ranks().front())].accuracy(data.x,
                                                                                  data.y);
}

std::size_t DataParallelTrainer::total_bytes_per_worker() const {
  std::size_t total = 0;
  for (const auto& s : history_) total += s.bytes_per_worker;
  return total;
}

double DataParallelTrainer::replica_divergence() const {
  double divergence = 0.0;
  const std::vector<int> active = comm_.active_ranks();
  const auto& reference = models_[static_cast<std::size_t>(active.front())].layers();
  for (std::size_t a = 1; a < active.size(); ++a) {
    const auto& layers = models_[static_cast<std::size_t>(active[a])].layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
      divergence = std::max(divergence, tensor::max_abs_diff(reference[i].w, layers[i].w));
      divergence = std::max(divergence, tensor::max_abs_diff(reference[i].b, layers[i].b));
    }
  }
  return divergence;
}

Checkpoint DataParallelTrainer::make_checkpoint() const {
  Checkpoint ck;
  ck.step = step_count_;
  ck.layer_dims = config_.layer_dims;
  const std::vector<int> active = comm_.active_ranks();
  const auto first = static_cast<std::size_t>(active.front());
  for (const auto& layer : models_[first].layers()) {
    ck.params.push_back(layer.w);
    ck.params.push_back(layer.b);
  }
  ck.optimizer_lr = optimizers_[first].current_lr();
  ck.velocity = optimizers_[first].velocity();
  ck.ranks.reserve(active.size());
  for (const int rank : active) {
    RankState rs;
    rs.rank = rank;
    rs.compressor_state = compressors_[static_cast<std::size_t>(rank)]->serialize_state();
    ck.ranks.push_back(std::move(rs));
  }
  return ck;
}

void DataParallelTrainer::restore(const Checkpoint& ck) {
  if (ck.layer_dims != config_.layer_dims)
    throw std::invalid_argument(
        "DataParallelTrainer: checkpoint layer_dims do not match this trainer");
  for (const int rank : comm_.active_ranks()) {
    const auto r = static_cast<std::size_t>(rank);
    auto& layers = models_[r].layers();
    if (ck.params.size() != layers.size() * 2)
      throw std::invalid_argument("DataParallelTrainer: checkpoint parameter count mismatch");
    for (std::size_t i = 0; i < layers.size(); ++i) {
      layers[i].w = ck.params[2 * i];
      layers[i].b = ck.params[2 * i + 1];
    }
    optimizers_[r].set_state(ck.optimizer_lr, ck.velocity);
    // Error feedback drifted past the checkpoint: rebuild the compressor
    // fresh (under the scheme that is live NOW — an adaptive switch after
    // the snapshot cleared the blobs), then load the blob saved for this
    // original rank. Empty blob = keep the fresh, empty state.
    compressors_[r] = compress::make_compressor(active_compression_);
    for (const auto& rs : ck.ranks)
      if (rs.rank == rank && !rs.compressor_state.empty())
        compressors_[r]->restore_state(rs.compressor_state);
  }
  // Ranks absent from the checkpoint (their replacement rejoined after the
  // snapshot, or a full restart re-spawned the whole group) still must agree
  // with the restored ranks on the SHARED compressor state — RandomK's round
  // counters, PowerSGD's warm-start Q — or the next aggregation silently
  // diverges. Resync them from the first restored rank.
  const auto in_ck = [&](int rank) {
    for (const auto& rs : ck.ranks)
      if (rs.rank == rank) return !rs.compressor_state.empty();
    return false;
  };
  int donor = -1;
  for (const int rank : comm_.active_ranks())
    if (in_ck(rank)) {
      donor = rank;
      break;
    }
  if (donor >= 0) {
    const auto shared = compressors_[static_cast<std::size_t>(donor)]->serialize_shared_state();
    if (!shared.empty())
      for (const int rank : comm_.active_ranks())
        if (!in_ck(rank))
          compressors_[static_cast<std::size_t>(rank)]->restore_shared_state(shared);
  }
  step_count_ = ck.step;
  if (history_.size() > static_cast<std::size_t>(ck.step))
    history_.resize(static_cast<std::size_t>(ck.step));
}

void DataParallelTrainer::save_checkpoint(const std::string& path) const {
  make_checkpoint().save(path);
}

void DataParallelTrainer::load_checkpoint(const std::string& path) {
  restore(Checkpoint::load(path));
}

}  // namespace gradcomp::train
