#include "models/model_profile.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <stdexcept>

namespace gradcomp::models {

std::int64_t LayerSpec::matrix_rows() const {
  return shape.empty() ? 0 : shape.front();
}

std::int64_t LayerSpec::matrix_cols() const {
  if (shape.empty()) return 0;
  std::int64_t c = 1;
  for (std::size_t i = 1; i < shape.size(); ++i) c *= shape[i];
  return c;
}

std::int64_t ModelProfile::total_params() const {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.numel();
  return n;
}

namespace {

// Builder helpers -----------------------------------------------------------

void add(std::vector<LayerSpec>& layers, std::string name, tensor::Shape shape) {
  layers.push_back(LayerSpec{std::move(name), std::move(shape)});
}

void add_conv_bn(std::vector<LayerSpec>& layers, const std::string& name, std::int64_t out_c,
                 std::int64_t in_c, std::int64_t k) {
  add(layers, name + ".conv", {out_c, in_c, k, k});
  add(layers, name + ".bn.weight", {out_c});
  add(layers, name + ".bn.bias", {out_c});
}

// ResNet bottleneck block: 1x1 reduce, 3x3, 1x1 expand (+1x1 downsample on
// the first block of each stage).
void add_bottleneck(std::vector<LayerSpec>& layers, const std::string& name, std::int64_t in_c,
                    std::int64_t mid_c, std::int64_t out_c, bool downsample) {
  add_conv_bn(layers, name + ".conv1", mid_c, in_c, 1);
  add_conv_bn(layers, name + ".conv2", mid_c, mid_c, 3);
  add_conv_bn(layers, name + ".conv3", out_c, mid_c, 1);
  if (downsample) add_conv_bn(layers, name + ".downsample", out_c, in_c, 1);
}

ModelProfile make_resnet(const std::string& name, const std::array<int, 4>& blocks,
                         double backward_ms_per_sample) {
  ModelProfile m;
  m.name = name;
  m.backward_ms_per_sample = backward_ms_per_sample;
  m.forward_ms_per_sample = backward_ms_per_sample * 0.5;  // fwd ~ half of bwd

  add_conv_bn(m.layers, "stem", 64, 3, 7);

  const std::array<std::int64_t, 4> mids = {64, 128, 256, 512};
  std::int64_t in_c = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t mid = mids[static_cast<std::size_t>(stage)];
    const std::int64_t out_c = mid * 4;
    for (int b = 0; b < blocks[static_cast<std::size_t>(stage)]; ++b) {
      const std::string bname =
          "layer" + std::to_string(stage + 1) + ".block" + std::to_string(b);
      add_bottleneck(m.layers, bname, in_c, mid, out_c, /*downsample=*/b == 0);
      in_c = out_c;
    }
  }
  add(m.layers, "fc.weight", {1000, in_c});
  add(m.layers, "fc.bias", {1000});
  return m;
}

void add_transformer_block(std::vector<LayerSpec>& layers, const std::string& name,
                           std::int64_t hidden, std::int64_t ff) {
  for (const char* proj : {"query", "key", "value", "output"}) {
    add(layers, name + ".attn." + proj + ".weight", {hidden, hidden});
    add(layers, name + ".attn." + std::string(proj) + ".bias", {hidden});
  }
  add(layers, name + ".attn.layernorm.weight", {hidden});
  add(layers, name + ".attn.layernorm.bias", {hidden});
  add(layers, name + ".ff.intermediate.weight", {ff, hidden});
  add(layers, name + ".ff.intermediate.bias", {ff});
  add(layers, name + ".ff.output.weight", {hidden, ff});
  add(layers, name + ".ff.output.bias", {hidden});
  add(layers, name + ".ff.layernorm.weight", {hidden});
  add(layers, name + ".ff.layernorm.bias", {hidden});
}

ModelProfile make_bert(const std::string& name, int num_layers, std::int64_t hidden,
                       std::int64_t ff, double backward_ms_per_sample) {
  ModelProfile m;
  m.name = name;
  m.backward_ms_per_sample = backward_ms_per_sample;
  m.forward_ms_per_sample = backward_ms_per_sample * 0.5;

  add(m.layers, "embeddings.word.weight", {30522, hidden});
  add(m.layers, "embeddings.position.weight", {512, hidden});
  add(m.layers, "embeddings.token_type.weight", {2, hidden});
  add(m.layers, "embeddings.layernorm.weight", {hidden});
  add(m.layers, "embeddings.layernorm.bias", {hidden});
  for (int l = 0; l < num_layers; ++l)
    add_transformer_block(m.layers, "encoder.layer" + std::to_string(l), hidden, ff);
  add(m.layers, "pooler.weight", {hidden, hidden});
  add(m.layers, "pooler.bias", {hidden});
  return m;
}

std::string normalize(const std::string& s) {
  std::string out;
  for (char c : s)
    if (std::isalnum(static_cast<unsigned char>(c)))
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

}  // namespace

// Calibrated V100 backward times (DESIGN.md Section 5): ResNet-50 backward
// is ~122 ms at batch 64 (Table 2 text), ResNet-101 scales by depth. BERT's
// per-sample time is set so PowerSGD rank-4's speedup at 96 GPUs / batch 10
// lands at the paper's ~23% (Figure 4) — BERT trains at batch 10-12 with a
// long sequence length, making each sample compute-heavy.
ModelProfile resnet50() { return make_resnet("resnet50", {3, 4, 6, 3}, 122.0 / 64.0); }

ModelProfile resnet101() { return make_resnet("resnet101", {3, 4, 23, 3}, 211.0 / 64.0); }

ModelProfile bert_base() { return make_bert("bert_base", 12, 768, 3072, 45.0); }

ModelProfile bert_large() { return make_bert("bert_large", 24, 1024, 4096, 140.0); }

ModelProfile vgg16() {
  // VGG-16 with batch norm omitted (original architecture): 13 convs + 3 FC
  // layers, ~138M parameters, ~90% of them in fc1 (25088 x 4096) — the
  // extreme parameters-per-FLOP workload that motivated early compression
  // work.
  ModelProfile m;
  m.name = "vgg16";
  m.backward_ms_per_sample = 2.9;  // V100-calibrated; compute-light for its size
  m.forward_ms_per_sample = 1.45;
  const std::array<std::array<std::int64_t, 2>, 13> convs = {{{3, 64},
                                                              {64, 64},
                                                              {64, 128},
                                                              {128, 128},
                                                              {128, 256},
                                                              {256, 256},
                                                              {256, 256},
                                                              {256, 512},
                                                              {512, 512},
                                                              {512, 512},
                                                              {512, 512},
                                                              {512, 512},
                                                              {512, 512}}};
  for (std::size_t i = 0; i < convs.size(); ++i) {
    const auto [in_c, out_c] = convs[i];
    add(m.layers, "conv" + std::to_string(i) + ".weight", {out_c, in_c, 3, 3});
    add(m.layers, "conv" + std::to_string(i) + ".bias", {out_c});
  }
  add(m.layers, "fc1.weight", {4096, 25088});
  add(m.layers, "fc1.bias", {4096});
  add(m.layers, "fc2.weight", {4096, 4096});
  add(m.layers, "fc2.bias", {4096});
  add(m.layers, "fc3.weight", {1000, 4096});
  add(m.layers, "fc3.bias", {1000});
  return m;
}

ModelProfile model_by_name(const std::string& name) {
  const std::string key = normalize(name);
  if (key == "resnet50") return resnet50();
  if (key == "resnet101") return resnet101();
  if (key == "bertbase" || key == "bert") return bert_base();
  if (key == "bertlarge") return bert_large();
  if (key == "vgg16" || key == "vgg") return vgg16();
  throw std::invalid_argument("model_by_name: unknown model '" + name + "'");
}

std::vector<ModelProfile> all_models() {
  return {resnet50(), resnet101(), bert_base(), bert_large(), vgg16()};
}

}  // namespace gradcomp::models
