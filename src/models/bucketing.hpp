// DDP-style gradient bucketing (Section 2.2 "Bucketing Gradients").
//
// PyTorch DDP coalesces per-layer gradients into fixed-capacity buckets
// (25 MB by default) filled in *reverse* layer order — the order gradients
// become ready during the backward pass — and launches one all-reduce per
// filled bucket. The performance model's (k-1) overlapped buckets of size b
// plus a trailing bucket b_hat correspond exactly to this partition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "models/model_profile.hpp"

namespace gradcomp::models {

inline constexpr std::int64_t kDefaultBucketBytes = 25 * 1024 * 1024;

struct Bucket {
  std::vector<std::size_t> layer_indices;  // indices into ModelProfile::layers
  std::int64_t bytes = 0;
};

// Partitions the model's layers into buckets of at most `bucket_bytes`,
// filling in reverse layer order. Buckets are returned in the order their
// all-reduce launches (i.e. bucket 0 holds the *last* layers of the model).
// A single layer larger than `bucket_bytes` gets a bucket of its own.
[[nodiscard]] std::vector<Bucket> make_buckets(const ModelProfile& model,
                                               std::int64_t bucket_bytes = kDefaultBucketBytes);

// Bucket byte sizes in launch order (the performance model's input).
[[nodiscard]] std::vector<std::int64_t> bucket_sizes(const ModelProfile& model,
                                                     std::int64_t bucket_bytes = kDefaultBucketBytes);

}  // namespace gradcomp::models
