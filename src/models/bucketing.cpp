#include "models/bucketing.hpp"

#include <stdexcept>

namespace gradcomp::models {

std::vector<Bucket> make_buckets(const ModelProfile& model, std::int64_t bucket_bytes) {
  if (bucket_bytes <= 0) throw std::invalid_argument("make_buckets: bucket_bytes must be > 0");
  std::vector<Bucket> buckets;
  Bucket current;
  // Reverse layer order: the backward pass produces the last layer's
  // gradient first, so DDP fills buckets back-to-front.
  for (std::size_t i = model.layers.size(); i-- > 0;) {
    const std::int64_t b = model.layers[i].bytes();
    if (current.bytes > 0 && current.bytes + b > bucket_bytes) {
      buckets.push_back(std::move(current));
      current = Bucket{};
    }
    current.layer_indices.push_back(i);
    current.bytes += b;
  }
  if (current.bytes > 0 || !current.layer_indices.empty()) buckets.push_back(std::move(current));
  return buckets;
}

std::vector<std::int64_t> bucket_sizes(const ModelProfile& model, std::int64_t bucket_bytes) {
  std::vector<std::int64_t> sizes;
  for (const auto& b : make_buckets(model, bucket_bytes)) sizes.push_back(b.bytes);
  return sizes;
}

}  // namespace gradcomp::models
