// Device profiles: compute-capability scaling for what-if analyses.
//
// The paper's Figure 12 asks "what if compute gets k-times faster while the
// network stays at 10 Gbps?" — both the backward pass *and* encode/decode
// shrink by the same factor (Section 6). A Device is therefore just a
// scaling applied to every compute-side duration of the calibrated V100
// baseline.
#pragma once

#include <stdexcept>
#include <string>

#include "core/units.hpp"

namespace gradcomp::models {

using core::units::Seconds;

struct Device {
  std::string name = "v100";
  // Relative throughput vs the calibrated V100 (2.0 = twice as fast).
  double compute_scale = 1.0;
  // Compute slowdown applied when backward and communication overlap
  // (the paper's gamma, measured via Nsight; Section 4.1). gamma >= 1.
  double gamma = 1.18;

  [[nodiscard]] Seconds scaled(Seconds v100_time) const {
    if (compute_scale <= 0) throw std::invalid_argument("Device: compute_scale must be > 0");
    return Seconds{v100_time.value() / compute_scale};
  }

  [[nodiscard]] static Device v100() { return Device{}; }
  [[nodiscard]] static Device v100_times(double factor) {
    return Device{"v100 x" + std::to_string(factor), factor, 1.18};
  }
};

}  // namespace gradcomp::models
