// Layer-accurate parameter profiles of the paper's workload models.
//
// The timing experiments need (a) per-layer gradient shapes — PowerSGD and
// ATOMO compress each layer's matricized gradient, so shapes determine
// encode cost and compressed size — and (b) total gradient bytes and
// calibrated backward-pass durations. The profiles are constructed
// programmatically from the published architectures: ResNet-50/101 (He et
// al.) and BERT_BASE/LARGE (Devlin et al.), matching the paper's quoted
// model sizes (~97 MB / ~170 MB / ~418 MB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "tensor/tensor.hpp"

namespace gradcomp::models {

using core::units::Bytes;

struct LayerSpec {
  std::string name;
  tensor::Shape shape;  // parameter tensor shape (e.g. {out,in,kh,kw} for conv)

  [[nodiscard]] std::int64_t numel() const { return tensor::shape_numel(shape); }
  [[nodiscard]] std::int64_t bytes() const { return numel() * 4; }
  // Rows/cols of the PowerSGD-style matricization (dim0 x rest).
  [[nodiscard]] std::int64_t matrix_rows() const;
  [[nodiscard]] std::int64_t matrix_cols() const;
  // 1-D layers (biases, layer norms) are not worth low-rank compressing;
  // PowerSGD sends them uncompressed, as the reference implementation does.
  [[nodiscard]] bool is_matrix() const { return matrix_rows() > 1 && matrix_cols() > 1; }
};

struct ModelProfile {
  std::string name;
  std::vector<LayerSpec> layers;
  // Calibrated V100 backward-pass time per sample (milliseconds). Scales
  // linearly with batch size; see DESIGN.md "Calibration constants".
  double backward_ms_per_sample = 0.0;
  // Forward pass, for completeness in end-to-end iteration estimates.
  double forward_ms_per_sample = 0.0;

  [[nodiscard]] std::int64_t total_params() const;
  [[nodiscard]] std::int64_t total_bytes() const { return total_params() * 4; }
  [[nodiscard]] double total_mb() const {
    return static_cast<double>(total_bytes()) / (1024.0 * 1024.0);
  }
  [[nodiscard]] core::units::Seconds backward_seconds(int batch_size) const {
    return core::units::Seconds{backward_ms_per_sample * static_cast<double>(batch_size) / 1e3};
  }
};

// The paper's three primary workloads plus BERT_LARGE (mentioned in
// finding 5) and VGG-16 (the classic parameter-heavy/compute-light CNN —
// the most favourable realistic case for gradient compression).
[[nodiscard]] ModelProfile resnet50();
[[nodiscard]] ModelProfile resnet101();
[[nodiscard]] ModelProfile bert_base();
[[nodiscard]] ModelProfile bert_large();
[[nodiscard]] ModelProfile vgg16();

// Lookup by case-insensitive name ("resnet50", "resnet-50", ...). Throws
// std::invalid_argument for unknown names.
[[nodiscard]] ModelProfile model_by_name(const std::string& name);

// All built-in profiles (for parameterized tests/benches).
[[nodiscard]] std::vector<ModelProfile> all_models();

}  // namespace gradcomp::models
