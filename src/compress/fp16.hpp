// Half-precision gradient communication.
//
// The paper's first finding: in data-center settings, "a compression
// resulting in 33-50% the size of the original gradients suffices. Often
// this can be achieved simply by communicating at half precision." FP16 is
// all-reduce compatible (sum of halves is associative enough in practice)
// and layer-wise, and its encode cost is a single conversion pass.
#pragma once

#include "compress/compressor.hpp"

namespace gradcomp::compress {

class Fp16Compressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "fp16"; }
  [[nodiscard]] Traits traits() const override { return Traits{true, true, "quantization"}; }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;
};

}  // namespace gradcomp::compress
