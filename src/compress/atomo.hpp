// ATOMO (Wang et al.): SVD-based atomic low-rank compression.
//
// Each rank factors its OWN matricized gradient with a truncated SVD and
// ships the top-r factors. Because every rank's singular basis differs, the
// compressed forms are not summable: Table 1 classifies ATOMO as NOT
// all-reduce compatible (unlike PowerSGD, whose shared Q makes sums align),
// so aggregation is an all-gather followed by per-rank reconstruction and
// averaging. The SVD also makes its encode step markedly more expensive
// than PowerSGD's single power iteration — the contrast the paper draws in
// Section 2.1.
//
// The truncated SVD runs `power_iters` rounds of randomized subspace
// iteration, which converges to the top-r singular subspace.
#pragma once

#include <unordered_map>

#include "compress/compressor.hpp"

namespace gradcomp::compress {

class AtomoCompressor final : public Compressor {
 public:
  explicit AtomoCompressor(int rank, int power_iters = 8, std::uint64_t seed = 42);

  [[nodiscard]] std::string name() const override {
    return "atomo-r" + std::to_string(rank_);
  }
  [[nodiscard]] Traits traits() const override { return Traits{false, true, "low-rank"}; }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;

 private:
  struct Factors {
    tensor::Tensor p;  // m x r (left factor, scaled by singular values)
    tensor::Tensor v;  // n x r (right singular vectors)
  };
  [[nodiscard]] Factors factorize(LayerId layer, const tensor::Tensor& mat) const;
  [[nodiscard]] int effective_rank(std::int64_t m, std::int64_t n) const;

  int rank_;
  int power_iters_;
  std::uint64_t seed_;
};

}  // namespace gradcomp::compress
