#include "compress/signsgd.hpp"

#include "compress/state_io.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "core/parallel.hpp"
#include "stats/timer.hpp"
#include "tensor/simd.hpp"

namespace gradcomp::compress {

namespace {

// Local EF-signSGD estimate: (||x||_1 / n) * sign(x).
tensor::Tensor scaled_sign(const tensor::Tensor& x) {
  tensor::Tensor out = x;
  const auto n = static_cast<double>(x.numel());
  const float scale = n > 0 ? static_cast<float>(x.l1_norm() / n) : 0.0F;
  for (auto& v : out.data()) v = v >= 0.0F ? scale : -scale;
  return out;
}

}  // namespace

std::size_t SignSgdCompressor::compressed_bytes(const tensor::Shape& shape) const {
  const auto n = static_cast<std::size_t>(tensor::shape_numel(shape));
  return (n + 7) / 8 + (error_feedback_ ? sizeof(float) : 0);
}

void SignSgdCompressor::pack_signs_into(std::span<const float> values,
                                        std::span<std::byte> bits) {
  const std::size_t n = values.size();
  if (bits.size() != (n + 7) / 8)
    throw std::invalid_argument("pack_signs_into: bits span has wrong size");
  // Chunks are whole 32-sign words, so parallel workers touch disjoint bytes
  // and the dispatched kernel (tensor::simd) sees word-aligned sub-ranges;
  // the LSB-first wire layout (bit i%8 of byte i/8) is the kernel's contract.
  const std::size_t nwords = n / 32;
  constexpr std::int64_t kWordGrain = 1 << 12;  // 128 KiB of floats per chunk
  core::global_pool().parallel_for(
      0, static_cast<std::int64_t>(nwords), kWordGrain,
      [&](std::int64_t w0, std::int64_t w1) {
        tensor::simd::pack_signs(values.data() + w0 * 32, (w1 - w0) * 32,
                                 bits.data() + w0 * 4);
      });
  // Tail (< 32 elements): the kernel zeroes the pad bits.
  const auto tail = static_cast<std::int64_t>(n - nwords * 32);
  if (tail > 0)
    tensor::simd::pack_signs(values.data() + nwords * 32, tail, bits.data() + nwords * 4);
}

std::vector<std::byte> SignSgdCompressor::pack_signs(std::span<const float> values) {
  std::vector<std::byte> bits((values.size() + 7) / 8);
  pack_signs_into(values, bits);
  return bits;
}

void SignSgdCompressor::unpack_signs_into(std::span<const std::byte> bits, std::size_t n,
                                          std::span<float> out) {
  if (out.size() != n) throw std::invalid_argument("unpack_signs_into: out span has wrong size");
  const std::size_t nwords = n / 32;
  constexpr std::int64_t kWordGrain = 1 << 12;
  core::global_pool().parallel_for(
      0, static_cast<std::int64_t>(nwords), kWordGrain,
      [&](std::int64_t w0, std::int64_t w1) {
        tensor::simd::unpack_signs(bits.data() + w0 * 4, (w1 - w0) * 32,
                                   out.data() + w0 * 32);
      });
  const auto tail = static_cast<std::int64_t>(n - nwords * 32);
  if (tail > 0)
    tensor::simd::unpack_signs(bits.data() + nwords * 4, tail, out.data() + nwords * 32);
}

std::vector<float> SignSgdCompressor::unpack_signs(std::span<const std::byte> bits,
                                                   std::size_t n) {
  std::vector<float> out(n);
  unpack_signs_into(bits, n, out);
  return out;
}

tensor::Tensor SignSgdCompressor::with_residual(LayerId layer,
                                                const tensor::Tensor& grad) const {
  if (!error_feedback_) return grad;
  const auto it = residuals_.find(layer);
  if (it == residuals_.end()) return grad;
  return tensor::add(grad, it->second);
}

void SignSgdCompressor::update_residual(LayerId layer, const tensor::Tensor& input,
                                        const tensor::Tensor& estimate) {
  residuals_[layer] = tensor::sub(input, estimate);
}

AggregateStats SignSgdCompressor::aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                                            tensor::Tensor& grad) {
  AggregateStats stats;
  const auto n = static_cast<std::size_t>(grad.numel());
  stats.bytes_sent = compressed_bytes(grad.shape());

  stats::WallTimer encode_timer;
  tensor::Tensor work = with_residual(layer, grad);
  std::vector<std::byte> payload = pack_signs(work.data());
  float ef_scale = 0.0F;
  if (error_feedback_) {
    ef_scale = n > 0 ? static_cast<float>(work.l1_norm() / static_cast<double>(n)) : 0.0F;
    const std::size_t bits_len = payload.size();
    payload.resize(bits_len + sizeof(float));
    std::memcpy(payload.data() + bits_len, &ef_scale, sizeof(float));
    update_residual(layer, work, scaled_sign(work));
  }
  stats.encode_seconds = encode_timer.seconds();

  // Not all-reduce compatible: every rank gathers every other rank's signs.
  const auto gathered = comm.allgather(rank, payload);

  // Decode cost grows linearly with p — each rank unpacks and combines p
  // bit vectors (part of the paper's SignSGD slowdown at scale).
  stats::WallTimer decode_timer;
  std::vector<double> vote(n, 0.0);
  unpack_scratch_.resize(n);
  if (error_feedback_) {
    // Average of scaled signs.
    for (const auto& msg : gathered) {
      const std::size_t bits_len = (n + 7) / 8;
      float scale = 0.0F;
      std::memcpy(&scale, msg.data() + bits_len, sizeof(float));
      unpack_signs_into({msg.data(), bits_len}, n, unpack_scratch_);
      for (std::size_t i = 0; i < n; ++i)
        vote[i] += static_cast<double>(scale) * unpack_scratch_[i];
    }
    const auto p = static_cast<double>(comm.world_size());
    for (std::size_t i = 0; i < n; ++i)
      grad.data()[i] = static_cast<float>(vote[i] / p);
  } else {
    // Majority vote: sign of the sum of signs; ties resolve to +1 (>= 0).
    for (const auto& msg : gathered) {
      unpack_signs_into(msg, n, unpack_scratch_);
      for (std::size_t i = 0; i < n; ++i) vote[i] += unpack_scratch_[i];
    }
    for (std::size_t i = 0; i < n; ++i) grad.data()[i] = vote[i] >= 0.0 ? 1.0F : -1.0F;
  }
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor SignSgdCompressor::roundtrip(LayerId layer, const tensor::Tensor& grad) {
  tensor::Tensor work = with_residual(layer, grad);
  tensor::Tensor estimate = error_feedback_ ? scaled_sign(work) : work;
  if (!error_feedback_) {
    for (auto& v : estimate.data()) v = v >= 0.0F ? 1.0F : -1.0F;
  } else {
    update_residual(layer, work, estimate);
  }
  return estimate;
}

std::vector<std::byte> SignSgdCompressor::serialize_state() const {
  tensor::ByteWriter writer;
  detail::write_tensor_map(writer, residuals_);
  return writer.take();
}

void SignSgdCompressor::restore_state(std::span<const std::byte> bytes) {
  tensor::ByteReader reader(bytes, name() + " state");
  residuals_ = detail::read_tensor_map(reader);
  reader.expect_done();
}


}  // namespace gradcomp::compress
