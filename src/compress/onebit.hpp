// 1-BIT SGD (Seide et al.), the earliest quantization method the paper's
// background covers (Section 2.1).
//
// Each coordinate is quantized to one bit; the two reconstruction levels are
// the means of the positive and negative partitions, so the quantizer is
// exact on average within each partition. The quantization error is carried
// to the next step (the original error-feedback scheme). Aggregation needs
// an all-gather: per-rank reconstruction levels differ.
#pragma once

#include <unordered_map>

#include "compress/compressor.hpp"

namespace gradcomp::compress {

class OneBitCompressor final : public Compressor {
 public:
  OneBitCompressor() = default;

  [[nodiscard]] std::string name() const override { return "onebit"; }
  [[nodiscard]] Traits traits() const override {
    return Traits{false, true, "quantization"};
  }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;
  [[nodiscard]] std::vector<std::byte> serialize_state() const override;
  void restore_state(std::span<const std::byte> bytes) override;

  // Wire helpers: [pos_level:f32][neg_level:f32][sign bits].
  [[nodiscard]] static std::vector<std::byte> encode(std::span<const float> values);
  [[nodiscard]] static std::vector<float> decode(std::span<const std::byte> payload,
                                                 std::size_t n);

 private:
  // Applies the residual, encodes, updates the residual, returns the payload.
  [[nodiscard]] std::vector<std::byte> encode_with_feedback(LayerId layer,
                                                            const tensor::Tensor& grad);

  std::unordered_map<LayerId, tensor::Tensor> residuals_;
};

}  // namespace gradcomp::compress
