// TERNGRAD (Wen et al.): stochastic ternarization to {-1, 0, +1} * s_max.
//
// s_max = max_i |g_i|; coordinate i becomes sign(g_i) * s_max with
// probability |g_i| / s_max, else 0 — an unbiased estimator. Two bits per
// coordinate on the wire plus the fp32 scale. Table 1 classifies TernGrad
// as NOT all-reduce compatible (per-rank scales), so it all-gathers.
#pragma once

#include "compress/compressor.hpp"
#include "tensor/rng.hpp"

namespace gradcomp::compress {

class TernGradCompressor final : public Compressor {
 public:
  explicit TernGradCompressor(std::uint64_t seed = 42) : rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "terngrad"; }
  [[nodiscard]] Traits traits() const override {
    return Traits{false, true, "quantization"};
  }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;

  // Wire helpers: [scale:f32][2-bit codes: 0 -> 0, 1 -> +1, 2 -> -1].
  [[nodiscard]] std::vector<std::byte> encode(std::span<const float> values);
  [[nodiscard]] static std::vector<float> decode(std::span<const std::byte> payload,
                                                 std::size_t n);

 private:
  tensor::Rng rng_;
};

}  // namespace gradcomp::compress
