// QSGD (Alistarh et al.): stochastic uniform quantization with s levels.
//
// Each coordinate is quantized to sign * (l/s) * ||g||_2 where the level l
// is stochastically rounded so the quantizer is unbiased. Listed in the
// paper's Table 1 as NOT all-reduce compatible (different ranks' norms make
// the compressed form non-summable), so aggregation uses all-gather.
// Wire format: fp32 norm + one byte per coordinate (sign bit + 7-bit level,
// so levels <= 127).
#pragma once

#include "compress/compressor.hpp"
#include "tensor/rng.hpp"

namespace gradcomp::compress {

class QsgdCompressor final : public Compressor {
 public:
  explicit QsgdCompressor(int levels = 127, std::uint64_t seed = 42);

  [[nodiscard]] std::string name() const override {
    return "qsgd-" + std::to_string(levels_);
  }
  [[nodiscard]] Traits traits() const override {
    return Traits{false, true, "quantization"};
  }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;

  // Wire helpers (exposed for tests).
  [[nodiscard]] std::vector<std::byte> encode(std::span<const float> values);
  [[nodiscard]] static std::vector<float> decode(std::span<const std::byte> payload,
                                                 std::size_t n, int levels);

 private:
  int levels_;
  tensor::Rng rng_;
};

}  // namespace gradcomp::compress
