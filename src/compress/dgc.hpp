// DEEP GRADIENT COMPRESSION (Lin et al.), the last unimplemented row of the
// paper's Table 1.
//
// DGC sparsifies like Top-K but adds two corrections that preserve accuracy
// at extreme sparsity: momentum correction (a local velocity accumulator is
// compressed instead of the raw gradient) and gradient accumulation (what
// isn't sent keeps accumulating locally — error feedback on the velocity).
// Aggregation is an all-gather of (index, value) pairs: Table 1 classifies
// DGC as NOT all-reduce compatible.
#pragma once

#include <unordered_map>

#include "compress/compressor.hpp"
#include "tensor/topk.hpp"

namespace gradcomp::compress {

class DgcCompressor final : public Compressor {
 public:
  // fraction: share of coordinates transmitted per step; momentum: velocity
  // decay (the reference implementation uses 0.9).
  explicit DgcCompressor(double fraction, double momentum = 0.9);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Traits traits() const override {
    return Traits{false, true, "sparsification"};
  }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;
  // Persists the per-layer velocity and accumulation buffers.
  [[nodiscard]] std::vector<std::byte> serialize_state() const override;
  void restore_state(std::span<const std::byte> bytes) override;

  [[nodiscard]] std::int64_t k_for(std::int64_t numel) const;

 private:
  struct LayerState {
    tensor::Tensor velocity;      // momentum-corrected gradient accumulator
    tensor::Tensor accumulation;  // un-transmitted residual of the velocity
    bool initialized = false;
  };
  LayerState& state_for(LayerId layer, const tensor::Shape& shape);
  // Runs momentum correction + accumulation and selects the coordinates to
  // transmit; zeroes the transmitted coordinates in both accumulators.
  [[nodiscard]] tensor::TopKResult select_and_clear(LayerId layer, const tensor::Tensor& grad);

  double fraction_;
  double momentum_;
  std::unordered_map<LayerId, LayerState> states_;
  tensor::Workspace workspace_;  // selection scratch reused across steps
};

}  // namespace gradcomp::compress
