#include "compress/randomk.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "compress/state_io.hpp"
#include "stats/timer.hpp"
#include "tensor/rng.hpp"
#include "tensor/serial.hpp"
#include "tensor/topk.hpp"

namespace gradcomp::compress {

RandomKCompressor::RandomKCompressor(double fraction, std::uint64_t seed)
    : fraction_(fraction), seed_(seed) {
  if (!(fraction > 0.0) || fraction > 1.0)
    throw std::invalid_argument("RandomKCompressor: fraction must be in (0, 1]");
}

std::string RandomKCompressor::name() const {
  const int pct = static_cast<int>(std::lround(fraction_ * 100.0));
  return "randomk-" + std::to_string(pct) + "%";
}

std::int64_t RandomKCompressor::k_for(std::int64_t numel) const {
  if (numel == 0) return 0;
  const auto k = static_cast<std::int64_t>(std::ceil(fraction_ * static_cast<double>(numel)));
  return std::clamp<std::int64_t>(k, 1, numel);
}

std::size_t RandomKCompressor::compressed_bytes(const tensor::Shape& shape) const {
  // Only the k values travel; indices are derived from the shared seed.
  return static_cast<std::size_t>(k_for(tensor::shape_numel(shape))) * sizeof(float);
}

std::vector<std::int64_t> RandomKCompressor::indices_for(LayerId layer, std::uint64_t round,
                                                         std::int64_t n) const {
  const std::int64_t k = k_for(n);
  tensor::Rng rng(seed_ ^ (static_cast<std::uint64_t>(layer) * 0x9E3779B97F4A7C15ULL) ^
                  (round * 0xBF58476D1CE4E5B9ULL));
  // Partial Fisher-Yates: uniform k-subset without replacement.
  std::vector<std::int64_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  for (std::int64_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(n - i))) + i;
    std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(k));
  std::sort(pool.begin(), pool.end());
  return pool;
}

AggregateStats RandomKCompressor::aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                                            tensor::Tensor& grad) {
  AggregateStats stats;
  stats.bytes_sent = compressed_bytes(grad.shape());

  stats::WallTimer encode_timer;
  const std::uint64_t round = rounds_[layer]++;
  const auto indices = indices_for(layer, round, grad.numel());
  std::vector<float> values(indices.size());
  auto data = grad.data();
  for (std::size_t j = 0; j < indices.size(); ++j)
    values[j] = data[static_cast<std::size_t>(indices[j])];
  stats.encode_seconds = encode_timer.seconds();

  // All ranks hold values for the SAME coordinates: associative sum.
  comm.allreduce_sum(rank, values);

  stats::WallTimer decode_timer;
  const float inv_p = 1.0F / static_cast<float>(comm.world_size());
  for (auto& v : values) v *= inv_p;
  tensor::scatter(indices, values, grad.data());
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor RandomKCompressor::roundtrip(LayerId layer, const tensor::Tensor& grad) {
  const std::uint64_t round = rounds_[layer]++;
  const auto indices = indices_for(layer, round, grad.numel());
  auto src = grad.data();
  std::vector<float> values(indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j)
    values[j] = src[static_cast<std::size_t>(indices[j])];
  tensor::Tensor out(grad.shape());
  tensor::scatter(indices, values, out.data());
  return out;
}

std::vector<std::byte> RandomKCompressor::serialize_shared_state() const {
  tensor::ByteWriter writer;
  writer.u64(rounds_.size());
  for (const LayerId key : detail::sorted_keys(rounds_)) {
    writer.i64(key);
    writer.u64(rounds_.at(key));
  }
  return writer.take();
}

void RandomKCompressor::restore_shared_state(std::span<const std::byte> bytes) {
  tensor::ByteReader reader(bytes, name() + " shared state");
  std::unordered_map<LayerId, std::uint64_t> rounds;
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const LayerId key = reader.i64();
    rounds[key] = reader.u64();
  }
  reader.expect_done();
  rounds_ = std::move(rounds);
}

}  // namespace gradcomp::compress
