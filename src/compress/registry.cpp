#include "compress/registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "compress/atomo.hpp"
#include "compress/dgc.hpp"
#include "compress/fp16.hpp"
#include "compress/identity.hpp"
#include "compress/natural.hpp"
#include "compress/onebit.hpp"
#include "compress/powersgd.hpp"
#include "compress/qsgd.hpp"
#include "compress/randomk.hpp"
#include "compress/signsgd.hpp"
#include "compress/terngrad.hpp"
#include "compress/topk_compressor.hpp"

namespace gradcomp::compress {

std::vector<MethodInfo> table1_registry() {
  return {
      {"syncSGD", true, true, "none", true},
      {"GradiVeq", true, true, "low-rank", false},
      {"PowerSGD", true, true, "low-rank", true},
      {"Random-k", true, false, "sparsification", true},
      {"ATOMO", false, true, "low-rank", true},
      {"SignSGD", false, true, "quantization", true},
      {"TernGrad", false, true, "quantization", true},
      {"QSGD", false, true, "quantization", true},
      {"DGC", false, true, "sparsification", true},
  };
}

std::vector<Method> all_methods() {
  return {Method::kSyncSgd, Method::kFp16,     Method::kSignSgd, Method::kTopK,
          Method::kRandomK, Method::kPowerSgd, Method::kQsgd,    Method::kTernGrad,
          Method::kAtomo,   Method::kDgc,      Method::kOneBit,  Method::kNatural};
}

std::string method_name(Method method) {
  switch (method) {
    case Method::kSyncSgd: return "syncsgd";
    case Method::kFp16: return "fp16";
    case Method::kSignSgd: return "signsgd";
    case Method::kTopK: return "topk";
    case Method::kRandomK: return "randomk";
    case Method::kPowerSgd: return "powersgd";
    case Method::kQsgd: return "qsgd";
    case Method::kTernGrad: return "terngrad";
    case Method::kAtomo: return "atomo";
    case Method::kDgc: return "dgc";
    case Method::kOneBit: return "onebit";
    case Method::kNatural: return "natural";
  }
  throw std::invalid_argument("method_name: unknown method");
}

Method method_from_name(const std::string& name) {
  for (const Method m : all_methods())
    if (method_name(m) == name) return m;
  throw std::invalid_argument("method_from_name: unknown method '" + name + "'");
}

namespace {

// Which keys each method consumes — the single source of truth for the wire
// form, its parser, and semantic equality. Key order here is emission order.
enum class Key : std::uint8_t { kFraction, kRank, kLevels, kErrorFeedback, kFp16Values,
                                kSeed, kWarmStart, kMomentum };

struct KeySpec {
  Key key;
  const char* name;
};

std::vector<KeySpec> keys_for(Method method) {
  switch (method) {
    case Method::kSyncSgd:
    case Method::kFp16:
    case Method::kOneBit:
      return {};
    case Method::kSignSgd:
      return {{Key::kErrorFeedback, "error_feedback"}};
    case Method::kTopK:
      return {{Key::kFraction, "fraction"},
              {Key::kErrorFeedback, "error_feedback"},
              {Key::kFp16Values, "fp16_values"}};
    case Method::kRandomK:
      return {{Key::kFraction, "fraction"}, {Key::kSeed, "seed"}};
    case Method::kPowerSgd:
      return {{Key::kRank, "rank"}, {Key::kWarmStart, "warm_start"}, {Key::kSeed, "seed"}};
    case Method::kQsgd:
      return {{Key::kLevels, "levels"}, {Key::kSeed, "seed"}};
    case Method::kTernGrad:
    case Method::kNatural:
      return {{Key::kSeed, "seed"}};
    case Method::kAtomo:
      return {{Key::kRank, "rank"}, {Key::kSeed, "seed"}};
    case Method::kDgc:
      return {{Key::kFraction, "fraction"}, {Key::kMomentum, "momentum"}};
  }
  throw std::invalid_argument("keys_for: unknown method");
}

// %.17g round-trips any double exactly; trims to the short form when exact.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = std::strtod(buf, nullptr);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == parsed) return shorter;
  }
  return buf;
}

std::string format_value(const CompressorConfig& c, Key key) {
  switch (key) {
    case Key::kFraction: return format_double(c.fraction);
    case Key::kRank: return std::to_string(c.rank);
    case Key::kLevels: return std::to_string(c.levels);
    case Key::kErrorFeedback: return c.error_feedback ? "1" : "0";
    case Key::kFp16Values: return c.fp16_values ? "1" : "0";
    case Key::kSeed: return std::to_string(c.seed);
    case Key::kWarmStart: return c.warm_start ? "1" : "0";
    case Key::kMomentum: return format_double(c.momentum);
  }
  throw std::invalid_argument("format_value: unknown key");
}

void parse_value(CompressorConfig& c, Key key, const std::string& text) {
  const auto fail = [&](const char* what) {
    throw std::invalid_argument("config_from_string: bad " + std::string(what) + " value '" +
                                text + "'");
  };
  const auto as_bool = [&](const char* what) {
    if (text == "1" || text == "true") return true;
    if (text == "0" || text == "false") return false;
    fail(what);
    return false;
  };
  char* end = nullptr;
  switch (key) {
    case Key::kFraction:
      c.fraction = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') fail("fraction");
      break;
    case Key::kRank:
      c.rank = static_cast<int>(std::strtol(text.c_str(), &end, 10));
      if (end == text.c_str() || *end != '\0') fail("rank");
      break;
    case Key::kLevels:
      c.levels = static_cast<int>(std::strtol(text.c_str(), &end, 10));
      if (end == text.c_str() || *end != '\0') fail("levels");
      break;
    case Key::kErrorFeedback: c.error_feedback = as_bool("error_feedback"); break;
    case Key::kFp16Values: c.fp16_values = as_bool("fp16_values"); break;
    case Key::kSeed:
      c.seed = std::strtoull(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') fail("seed");
      break;
    case Key::kWarmStart: c.warm_start = as_bool("warm_start"); break;
    case Key::kMomentum:
      c.momentum = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') fail("momentum");
      break;
  }
}

}  // namespace

std::string config_to_string(const CompressorConfig& config) {
  std::string out = method_name(config.method);
  for (const KeySpec& spec : keys_for(config.method))
    out += ' ' + std::string(spec.name) + '=' + format_value(config, spec.key);
  return out;
}

CompressorConfig config_from_string(const std::string& text) {
  std::istringstream is(text);
  std::string token;
  if (!(is >> token))
    throw std::invalid_argument("config_from_string: empty config string");
  CompressorConfig config;
  config.method = method_from_name(token);
  const auto keys = keys_for(config.method);
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("config_from_string: expected key=value, got '" + token + "'");
    const std::string key_name = token.substr(0, eq);
    bool known = false;
    for (const KeySpec& spec : keys) {
      if (key_name != spec.name) continue;
      parse_value(config, spec.key, token.substr(eq + 1));
      known = true;
      break;
    }
    if (!known)
      throw std::invalid_argument("config_from_string: key '" + key_name +
                                  "' does not apply to " + method_name(config.method));
  }
  return config;
}

bool operator==(const CompressorConfig& a, const CompressorConfig& b) {
  return config_to_string(a) == config_to_string(b);
}

std::unique_ptr<Compressor> make_compressor(const CompressorConfig& config) {
  switch (config.method) {
    case Method::kSyncSgd:
      return std::make_unique<IdentityCompressor>();
    case Method::kFp16:
      return std::make_unique<Fp16Compressor>();
    case Method::kSignSgd:
      return std::make_unique<SignSgdCompressor>(config.error_feedback);
    case Method::kTopK:
      return std::make_unique<TopKCompressor>(config.fraction, config.error_feedback,
                                              config.fp16_values);
    case Method::kRandomK:
      return std::make_unique<RandomKCompressor>(config.fraction, config.seed);
    case Method::kPowerSgd:
      return std::make_unique<PowerSgdCompressor>(config.rank, config.warm_start, config.seed);
    case Method::kQsgd:
      return std::make_unique<QsgdCompressor>(config.levels, config.seed);
    case Method::kTernGrad:
      return std::make_unique<TernGradCompressor>(config.seed);
    case Method::kAtomo:
      return std::make_unique<AtomoCompressor>(config.rank, /*power_iters=*/8, config.seed);
    case Method::kDgc:
      return std::make_unique<DgcCompressor>(config.fraction, config.momentum);
    case Method::kOneBit:
      return std::make_unique<OneBitCompressor>();
    case Method::kNatural:
      return std::make_unique<NaturalCompressor>(config.seed);
  }
  throw std::invalid_argument("make_compressor: unknown method");
}

}  // namespace gradcomp::compress
