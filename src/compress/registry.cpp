#include "compress/registry.hpp"

#include <stdexcept>

#include "compress/atomo.hpp"
#include "compress/dgc.hpp"
#include "compress/fp16.hpp"
#include "compress/identity.hpp"
#include "compress/natural.hpp"
#include "compress/onebit.hpp"
#include "compress/powersgd.hpp"
#include "compress/qsgd.hpp"
#include "compress/randomk.hpp"
#include "compress/signsgd.hpp"
#include "compress/terngrad.hpp"
#include "compress/topk_compressor.hpp"

namespace gradcomp::compress {

std::vector<MethodInfo> table1_registry() {
  return {
      {"syncSGD", true, true, "none", true},
      {"GradiVeq", true, true, "low-rank", false},
      {"PowerSGD", true, true, "low-rank", true},
      {"Random-k", true, false, "sparsification", true},
      {"ATOMO", false, true, "low-rank", true},
      {"SignSGD", false, true, "quantization", true},
      {"TernGrad", false, true, "quantization", true},
      {"QSGD", false, true, "quantization", true},
      {"DGC", false, true, "sparsification", true},
  };
}

std::vector<Method> all_methods() {
  return {Method::kSyncSgd, Method::kFp16,     Method::kSignSgd, Method::kTopK,
          Method::kRandomK, Method::kPowerSgd, Method::kQsgd,    Method::kTernGrad,
          Method::kAtomo,   Method::kDgc,      Method::kOneBit,  Method::kNatural};
}

std::string method_name(Method method) {
  switch (method) {
    case Method::kSyncSgd: return "syncsgd";
    case Method::kFp16: return "fp16";
    case Method::kSignSgd: return "signsgd";
    case Method::kTopK: return "topk";
    case Method::kRandomK: return "randomk";
    case Method::kPowerSgd: return "powersgd";
    case Method::kQsgd: return "qsgd";
    case Method::kTernGrad: return "terngrad";
    case Method::kAtomo: return "atomo";
    case Method::kDgc: return "dgc";
    case Method::kOneBit: return "onebit";
    case Method::kNatural: return "natural";
  }
  throw std::invalid_argument("method_name: unknown method");
}

std::unique_ptr<Compressor> make_compressor(const CompressorConfig& config) {
  switch (config.method) {
    case Method::kSyncSgd:
      return std::make_unique<IdentityCompressor>();
    case Method::kFp16:
      return std::make_unique<Fp16Compressor>();
    case Method::kSignSgd:
      return std::make_unique<SignSgdCompressor>(config.error_feedback);
    case Method::kTopK:
      return std::make_unique<TopKCompressor>(config.fraction, config.error_feedback,
                                              config.fp16_values);
    case Method::kRandomK:
      return std::make_unique<RandomKCompressor>(config.fraction, config.seed);
    case Method::kPowerSgd:
      return std::make_unique<PowerSgdCompressor>(config.rank, config.warm_start, config.seed);
    case Method::kQsgd:
      return std::make_unique<QsgdCompressor>(config.levels, config.seed);
    case Method::kTernGrad:
      return std::make_unique<TernGradCompressor>(config.seed);
    case Method::kAtomo:
      return std::make_unique<AtomoCompressor>(config.rank, /*power_iters=*/8, config.seed);
    case Method::kDgc:
      return std::make_unique<DgcCompressor>(config.fraction, config.momentum);
    case Method::kOneBit:
      return std::make_unique<OneBitCompressor>();
    case Method::kNatural:
      return std::make_unique<NaturalCompressor>(config.seed);
  }
  throw std::invalid_argument("make_compressor: unknown method");
}

}  // namespace gradcomp::compress
