// Shared (de)serialization helpers for compressor checkpoint state.
//
// Compressor state is keyed by LayerId in unordered maps; these helpers fix
// a canonical on-wire order (ascending LayerId) so serialized blobs are
// deterministic and the checkpoint round-trip tests can demand bit-equality.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "compress/compressor.hpp"
#include "tensor/serial.hpp"

namespace gradcomp::compress::detail {

template <typename State>
std::vector<LayerId> sorted_keys(const std::unordered_map<LayerId, State>& map) {
  std::vector<LayerId> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

inline void write_tensor_map(tensor::ByteWriter& writer,
                             const std::unordered_map<LayerId, tensor::Tensor>& map) {
  writer.u64(map.size());
  for (const LayerId key : sorted_keys(map)) {
    writer.i64(key);
    writer.tensor(map.at(key));
  }
}

inline std::unordered_map<LayerId, tensor::Tensor> read_tensor_map(tensor::ByteReader& reader) {
  std::unordered_map<LayerId, tensor::Tensor> map;
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const LayerId key = reader.i64();
    map.emplace(key, reader.tensor());
  }
  return map;
}

}  // namespace gradcomp::compress::detail
