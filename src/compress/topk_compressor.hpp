// TOP-K sparsification (Aji & Heafield), the paper's representative
// sparsification method.
//
// Each rank keeps only the k = fraction*n coordinates largest in magnitude
// and transmits (index, value) pairs. Different ranks keep different
// coordinates, so the aggregation is not associative in compressed form:
// it requires an all-gather, and — as the paper stresses — the encode cost
// is a selection over the FULL gradient, which is why even TopK-1% shows
// 240+ ms encode times on ResNet-50 (Table 2) and no speedup (Figure 5).
#pragma once

#include <unordered_map>

#include "compress/compressor.hpp"
#include "tensor/topk.hpp"

namespace gradcomp::compress {

class TopKCompressor final : public Compressor {
 public:
  // fraction in (0, 1]: share of coordinates kept. fp16_values transmits the
  // kept values in half precision (sparsification composed with
  // quantization), 6 bytes per entry instead of 8.
  explicit TopKCompressor(double fraction, bool error_feedback = false,
                          bool fp16_values = false);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Traits traits() const override {
    return Traits{false, true, "sparsification"};
  }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;
  [[nodiscard]] std::vector<std::byte> serialize_state() const override;
  void restore_state(std::span<const std::byte> bytes) override;

  [[nodiscard]] std::int64_t k_for(std::int64_t numel) const;

  // Wire serialization (exposed for tests): [k:int64][indices:int32*k][values:float*k].
  [[nodiscard]] static std::vector<std::byte> serialize(const tensor::TopKResult& sparse);
  [[nodiscard]] static tensor::TopKResult deserialize(std::span<const std::byte> bytes);
  // Half-precision value variant: [k:int64][indices:int32*k][values:half*k].
  [[nodiscard]] static std::vector<std::byte> serialize_half(const tensor::TopKResult& sparse);
  [[nodiscard]] static tensor::TopKResult deserialize_half(std::span<const std::byte> bytes);

 private:
  [[nodiscard]] tensor::Tensor with_residual(LayerId layer, const tensor::Tensor& grad) const;
  [[nodiscard]] std::vector<std::byte> encode(const tensor::TopKResult& sparse) const;
  [[nodiscard]] tensor::TopKResult decode(std::span<const std::byte> bytes) const;

  double fraction_;
  bool error_feedback_;
  bool fp16_values_;
  std::unordered_map<LayerId, tensor::Tensor> residuals_;
  // Selection scratch + reused result storage: the encode hot path does no
  // per-step allocation in steady state.
  tensor::Workspace workspace_;
  tensor::TopKResult sparse_scratch_;
};

}  // namespace gradcomp::compress
