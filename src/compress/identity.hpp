// syncSGD baseline: no compression, plain sum all-reduce + averaging.
#pragma once

#include "compress/compressor.hpp"

namespace gradcomp::compress {

class IdentityCompressor final : public Compressor {
 public:
  [[nodiscard]] std::string name() const override { return "syncsgd"; }
  [[nodiscard]] Traits traits() const override { return Traits{true, true, "none"}; }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;
};

}  // namespace gradcomp::compress
