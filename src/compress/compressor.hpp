// Gradient compressor interface.
//
// A Compressor owns one rank's compression state (PowerSGD's warm-start Q
// and error-feedback memory are per-worker), encodes that rank's gradient,
// drives the aggregation collective appropriate to the method — all-reduce
// when the aggregation operator is associative, all-gather otherwise
// (Section 2.2, Table 1) — and decodes the aggregate back into a dense
// gradient.
//
// Two properties from the paper govern scalability (Section 4.2):
//   * all-reduce compatible?  -> per-rank traffic constant vs. linear in p
//   * layer-wise?             -> can compression interleave with backward
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/thread_comm.hpp"
#include "tensor/tensor.hpp"

namespace gradcomp::compress {

struct Traits {
  bool allreduce_compatible = false;
  bool layerwise = false;
  std::string family;  // "none" | "quantization" | "sparsification" | "low-rank"
};

// Measured cost and traffic of one aggregate() call.
struct AggregateStats {
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  std::size_t bytes_sent = 0;  // wire bytes this rank transmitted

  AggregateStats& operator+=(const AggregateStats& other) {
    encode_seconds += other.encode_seconds;
    decode_seconds += other.decode_seconds;
    bytes_sent += other.bytes_sent;
    return *this;
  }
};

// Stable identifier of the layer (or flat-gradient segment) being
// compressed; keys per-layer state such as PowerSGD's Q matrix.
using LayerId = std::int64_t;

class Compressor {
 public:
  virtual ~Compressor() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Traits traits() const = 0;

  // Wire bytes one rank transmits for an n-element gradient of the given
  // shape (shape matters for low-rank methods). Pure size accounting.
  [[nodiscard]] virtual std::size_t compressed_bytes(const tensor::Shape& shape) const = 0;

  // Replaces `grad` with the aggregated (mean-semantics) gradient across all
  // ranks of `comm`. Must be called collectively by every rank.
  virtual AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                                   tensor::Tensor& grad) = 0;

  // Local lossy encode+decode round trip (no communication): what this rank
  // would contribute. Used for compression-error properties and Table 2
  // encode/decode timing.
  [[nodiscard]] virtual tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) = 0;

  // Serializes this rank's persistent compression state — error-feedback
  // residuals, PowerSGD warm-start factors, DGC velocity — for
  // checkpointing. Stateless compressors return an empty blob.
  [[nodiscard]] virtual std::vector<std::byte> serialize_state() const { return {}; }
  // Restores state produced by serialize_state() on an identically configured
  // instance, replacing current state wholesale. Throws std::runtime_error on
  // malformed input.
  virtual void restore_state(std::span<const std::byte> bytes) {
    if (!bytes.empty())
      throw std::runtime_error(name() + ": unexpected compressor state blob");
  }

  // The subset of compressor state that must be IDENTICAL across ranks for
  // aggregation to stay correct: RandomK's per-layer round counters (they
  // seed the shared index draw) and PowerSGD's warm-start Q (it is
  // all-reduced every step, so all live ranks hold the same copy). A
  // replacement rank rejoining the group must adopt this from a survivor or
  // the collective silently corrupts. Per-rank state — error-feedback
  // residuals, DGC velocity — is deliberately EXCLUDED: a joiner restarts
  // with zero residual rather than reintroducing stale error feedback.
  [[nodiscard]] virtual std::vector<std::byte> serialize_shared_state() const { return {}; }
  // Installs shared state produced by serialize_shared_state() on an
  // identically configured instance. Throws std::runtime_error on malformed
  // input.
  virtual void restore_shared_state(std::span<const std::byte> bytes) {
    if (!bytes.empty())
      throw std::runtime_error(name() + ": unexpected shared compressor state blob");
  }
};

// ---------------------------------------------------------------------------
// Factory.

enum class Method : std::uint8_t {
  kSyncSgd,    // no compression (baseline)
  kFp16,
  kSignSgd,
  kTopK,
  kRandomK,
  kPowerSgd,
  kQsgd,
  kTernGrad,
  kAtomo,
  kDgc,        // Deep Gradient Compression (momentum-corrected sparsification)
  kOneBit,     // 1-bit SGD (partition-mean quantization + error feedback)
  kNatural,    // natural compression (stochastic power-of-two rounding)
};

// All factory-constructible methods, for parameterized tests and sweeps.
[[nodiscard]] std::vector<Method> all_methods();

struct CompressorConfig {
  Method method = Method::kSyncSgd;
  // TopK / RandomK: fraction of coordinates kept, in (0, 1].
  double fraction = 0.01;
  // PowerSGD / ATOMO: target rank (>=1).
  int rank = 4;
  // QSGD: quantization levels (2..127).
  int levels = 127;
  // TopK / SignSGD: keep a local residual and fold it into the next step.
  bool error_feedback = false;
  // TopK: transmit the kept values in half precision (GRACE-style composition
  // of sparsification + quantization), shrinking each entry from 8 to 6
  // bytes on the wire.
  bool fp16_values = false;
  // RandomK / QSGD / TernGrad / Natural: seed for stochastic choices.
  std::uint64_t seed = 42;
  // PowerSGD: reuse the previous step's Q as the power-iteration warm start.
  bool warm_start = true;
  // DGC: velocity decay for momentum correction.
  double momentum = 0.9;
};

// Creates one rank's compressor instance. Throws std::invalid_argument on
// out-of-range parameters.
[[nodiscard]] std::unique_ptr<Compressor> make_compressor(const CompressorConfig& config);

// Human-readable method name ("powersgd", "topk", ...).
[[nodiscard]] std::string method_name(Method method);

}  // namespace gradcomp::compress
