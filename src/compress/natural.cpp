#include "compress/natural.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/timer.hpp"

namespace gradcomp::compress {

namespace {

constexpr int kExponentBias = 64;  // codes 1..127 cover exponents -63..62

}  // namespace

std::size_t NaturalCompressor::compressed_bytes(const tensor::Shape& shape) const {
  return static_cast<std::size_t>(tensor::shape_numel(shape));  // one byte per coordinate
}

std::vector<std::byte> NaturalCompressor::encode(std::span<const float> values) {
  std::vector<std::byte> out(values.size(), std::byte{0});
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float v = values[i];
    if (v == 0.0F || !std::isfinite(v)) continue;  // zero code
    const double mag = std::abs(static_cast<double>(v));
    int e = static_cast<int>(std::floor(std::log2(mag)));
    const double lower = std::ldexp(1.0, e);
    // P(round down) = (2^(e+1) - |v|) / 2^e; unbiased.
    const double p_down = (2.0 * lower - mag) / lower;
    if (rng_.next_double() >= p_down) ++e;
    e = std::clamp(e, -kExponentBias + 1, kExponentBias - 2);
    std::uint8_t code = static_cast<std::uint8_t>(e + kExponentBias);
    if (v < 0.0F) code |= 0x80U;
    out[i] = static_cast<std::byte>(code);
  }
  return out;
}

std::vector<float> NaturalCompressor::decode(std::span<const std::byte> payload, std::size_t n) {
  if (payload.size() != n)
    throw std::invalid_argument("NaturalCompressor::decode: payload size mismatch");
  std::vector<float> out(n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    const auto code = static_cast<std::uint8_t>(payload[i]);
    if ((code & 0x7FU) == 0) continue;  // zero
    const int e = static_cast<int>(code & 0x7FU) - kExponentBias;
    const float mag = static_cast<float>(std::ldexp(1.0, e));
    out[i] = (code & 0x80U) != 0 ? -mag : mag;
  }
  return out;
}

AggregateStats NaturalCompressor::aggregate(LayerId /*layer*/, int rank,
                                            comm::ThreadComm& comm, tensor::Tensor& grad) {
  AggregateStats stats;
  const auto n = static_cast<std::size_t>(grad.numel());
  stats.bytes_sent = compressed_bytes(grad.shape());

  stats::WallTimer encode_timer;
  const auto payload = encode(grad.data());
  stats.encode_seconds = encode_timer.seconds();

  const auto gathered = comm.allgather(rank, payload);

  stats::WallTimer decode_timer;
  grad.fill(0.0F);
  auto out = grad.data();
  for (const auto& msg : gathered) {
    const auto values = decode(msg, n);
    for (std::size_t i = 0; i < n; ++i) out[i] += values[i];
  }
  grad.scale(1.0F / static_cast<float>(comm.world_size()));
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor NaturalCompressor::roundtrip(LayerId /*layer*/, const tensor::Tensor& grad) {
  const auto payload = encode(grad.data());
  return tensor::Tensor(grad.shape(), decode(payload, static_cast<std::size_t>(grad.numel())));
}

}  // namespace gradcomp::compress
