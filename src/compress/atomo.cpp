#include "compress/atomo.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "stats/timer.hpp"
#include "tensor/linalg.hpp"
#include "tensor/rng.hpp"

namespace gradcomp::compress {

namespace {

// Serializes two matrices as [m:i64][n:i64][r:i64][P floats][V floats].
std::vector<std::byte> serialize_factors(const tensor::Tensor& p, const tensor::Tensor& v) {
  const std::int64_t m = p.dim(0);
  const std::int64_t n = v.dim(0);
  const std::int64_t r = p.dim(1);
  std::vector<std::byte> out(3 * sizeof(std::int64_t) + p.byte_size() + v.byte_size());
  std::byte* ptr = out.data();
  for (const std::int64_t* header : {&m, &n, &r}) {
    std::memcpy(ptr, header, sizeof(std::int64_t));
    ptr += sizeof(std::int64_t);
  }
  std::memcpy(ptr, p.data().data(), p.byte_size());
  ptr += p.byte_size();
  std::memcpy(ptr, v.data().data(), v.byte_size());
  return out;
}

std::pair<tensor::Tensor, tensor::Tensor> deserialize_factors(std::span<const std::byte> bytes) {
  if (bytes.size() < 3 * sizeof(std::int64_t))
    throw std::invalid_argument("AtomoCompressor: truncated payload");
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t r = 0;
  const std::byte* ptr = bytes.data();
  for (std::int64_t* header : {&m, &n, &r}) {
    std::memcpy(header, ptr, sizeof(std::int64_t));
    ptr += sizeof(std::int64_t);
  }
  const std::size_t expected = 3 * sizeof(std::int64_t) +
                               static_cast<std::size_t>((m + n) * r) * sizeof(float);
  if (m < 0 || n < 0 || r < 0 || bytes.size() != expected)
    throw std::invalid_argument("AtomoCompressor: corrupt payload");
  tensor::Tensor p({m, r});
  tensor::Tensor v({n, r});
  std::memcpy(p.data().data(), ptr, p.byte_size());
  ptr += p.byte_size();
  std::memcpy(v.data().data(), ptr, v.byte_size());
  return {std::move(p), std::move(v)};
}

}  // namespace

AtomoCompressor::AtomoCompressor(int rank, int power_iters, std::uint64_t seed)
    : rank_(rank), power_iters_(power_iters), seed_(seed) {
  if (rank < 1) throw std::invalid_argument("AtomoCompressor: rank must be >= 1");
  if (power_iters < 1) throw std::invalid_argument("AtomoCompressor: power_iters must be >= 1");
}

int AtomoCompressor::effective_rank(std::int64_t m, std::int64_t n) const {
  return static_cast<int>(std::min<std::int64_t>({rank_, m, n}));
}

std::size_t AtomoCompressor::compressed_bytes(const tensor::Shape& shape) const {
  const std::int64_t numel = tensor::shape_numel(shape);
  if (numel == 0) return 0;
  const std::int64_t m = shape.empty() ? numel : shape.front();
  const std::int64_t n = m > 0 ? numel / m : 0;
  if (m <= 1 || n <= 1) return static_cast<std::size_t>(numel) * sizeof(float);
  const int r = effective_rank(m, n);
  return static_cast<std::size_t>(m + n) * static_cast<std::size_t>(r) * sizeof(float);
}

AtomoCompressor::Factors AtomoCompressor::factorize(LayerId layer,
                                                    const tensor::Tensor& mat) const {
  const std::int64_t m = mat.dim(0);
  const std::int64_t n = mat.dim(1);
  const int r = effective_rank(m, n);

  // Randomized subspace iteration for the top-r singular subspace.
  tensor::Rng rng(seed_ ^ (static_cast<std::uint64_t>(layer) * 0x94D049BB133111EBULL));
  tensor::Tensor v = tensor::Tensor::randn({n, r}, rng);
  tensor::orthonormalize_columns(v);
  tensor::Tensor u({m, r});
  for (int iter = 0; iter < power_iters_; ++iter) {
    u = tensor::matmul(mat, v);  // m x r
    tensor::orthonormalize_columns(u);
    v = tensor::matmul(mat, u, tensor::Transpose::kYes);  // n x r
    if (iter + 1 < power_iters_) tensor::orthonormalize_columns(v);
  }
  // After the loop v = M^T u with orthonormal u, so M ~= u * v^T directly:
  // the singular values live in v's column norms.
  return Factors{std::move(u), std::move(v)};
}

AggregateStats AtomoCompressor::aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                                          tensor::Tensor& grad) {
  AggregateStats stats;
  tensor::Tensor mat = grad.matricize();
  const std::int64_t m = mat.dim(0);
  const std::int64_t n = mat.dim(1);
  if (m <= 1 || n <= 1) {
    comm.allreduce_sum(rank, grad.data());
    grad.scale(1.0F / static_cast<float>(comm.world_size()));
    stats.bytes_sent = grad.byte_size();
    return stats;
  }
  stats.bytes_sent = compressed_bytes(grad.shape());

  stats::WallTimer encode_timer;
  const Factors factors = factorize(layer, mat);
  const auto payload = serialize_factors(factors.p, factors.v);
  stats.encode_seconds = encode_timer.seconds();

  // Per-rank singular bases differ -> all-gather, reconstruct each, average.
  const auto gathered = comm.allgather(rank, payload);

  stats::WallTimer decode_timer;
  tensor::Tensor sum({m, n});
  for (const auto& msg : gathered) {
    const auto [p, v] = deserialize_factors(msg);
    sum.add_(tensor::matmul(p, v, tensor::Transpose::kNo, tensor::Transpose::kYes));
  }
  sum.scale(1.0F / static_cast<float>(comm.world_size()));
  grad = sum.reshape(grad.shape());
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor AtomoCompressor::roundtrip(LayerId layer, const tensor::Tensor& grad) {
  tensor::Tensor mat = grad.matricize();
  if (mat.dim(0) <= 1 || mat.dim(1) <= 1) return grad;
  const Factors factors = factorize(layer, mat);
  return tensor::matmul(factors.p, factors.v, tensor::Transpose::kNo, tensor::Transpose::kYes)
      .reshape(grad.shape());
}

}  // namespace gradcomp::compress
