// POWERSGD (Vogels et al.), the paper's representative low-rank method and
// its best performer.
//
// Each 2-D (matricized) layer gradient M (m x n) is factored as P * Q^T with
// rank r via one warm-started power iteration:
//
//   P = M Q;  all-reduce(P);  orthonormalize(P);  Q = M^T P;  all-reduce(Q)
//
// Both all-reduces carry tiny (m+n)*r payloads, and summation is associative
// — PowerSGD is all-reduce compatible (Table 1), which is why it scales
// where SignSGD and TopK do not. Error feedback (M += residual before
// factoring, residual = M - P Q^T after) is integral to the method.
// 1-D layers (biases, norms) are aggregated uncompressed, as in the
// reference implementation.
#pragma once

#include <unordered_map>

#include "compress/compressor.hpp"

namespace gradcomp::compress {

class PowerSgdCompressor final : public Compressor {
 public:
  // rank >= 1; warm_start reuses last step's Q as the iteration's starting
  // point (the paper's and reference implementation's default). seed makes
  // the cold-start Q identical across ranks, which correctness requires.
  explicit PowerSgdCompressor(int rank, bool warm_start = true, std::uint64_t seed = 42);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Traits traits() const override { return Traits{true, true, "low-rank"}; }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;
  // Persists the warm-start Q and error-feedback residual per layer (the
  // scratch tensors are rebuilt on demand).
  [[nodiscard]] std::vector<std::byte> serialize_state() const override;
  void restore_state(std::span<const std::byte> bytes) override;
  // Shared state for a rejoining rank: the warm-start Q per layer (identical
  // on every live rank after each step's all-reduce). The joiner's
  // error-feedback residual starts at zero.
  [[nodiscard]] std::vector<std::byte> serialize_shared_state() const override;
  void restore_shared_state(std::span<const std::byte> bytes) override;

  [[nodiscard]] int target_rank() const noexcept { return rank_; }

 private:
  struct LayerState {
    tensor::Tensor q;         // n x r warm start
    tensor::Tensor residual;  // m x n error-feedback memory
    // Encode/decode scratch reused across iterations so the steady state
    // performs no per-step allocation: the matricized working copy M, the
    // two factors, and the reconstruction.
    tensor::Tensor mat;      // m x n
    tensor::Tensor p;        // m x r
    tensor::Tensor q_new;    // n x r
    tensor::Tensor decoded;  // m x n
    bool initialized = false;
  };

  // Effective rank for an m x n matrix: min(r, m, n).
  [[nodiscard]] int effective_rank(std::int64_t m, std::int64_t n) const;
  LayerState& state_for(LayerId layer, std::int64_t m, std::int64_t n);
  // Copies grad's flat data into `out` shaped (m, n), reusing out's storage.
  static void matricize_into(const tensor::Tensor& grad, std::int64_t m, std::int64_t n,
                             tensor::Tensor& out);

  int rank_;
  bool warm_start_;
  std::uint64_t seed_;
  std::unordered_map<LayerId, LayerState> states_;
};

}  // namespace gradcomp::compress
