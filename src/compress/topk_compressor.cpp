#include "compress/topk_compressor.hpp"

#include "compress/state_io.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "stats/timer.hpp"
#include "tensor/half.hpp"

namespace gradcomp::compress {

TopKCompressor::TopKCompressor(double fraction, bool error_feedback, bool fp16_values)
    : fraction_(fraction), error_feedback_(error_feedback), fp16_values_(fp16_values) {
  if (!(fraction > 0.0) || fraction > 1.0)
    throw std::invalid_argument("TopKCompressor: fraction must be in (0, 1]");
}

std::string TopKCompressor::name() const {
  const int pct = static_cast<int>(std::lround(fraction_ * 100.0));
  std::string base = "topk-" + std::to_string(pct) + "%";
  if (fp16_values_) base += "-fp16";
  return error_feedback_ ? "ef-" + base : base;
}

std::int64_t TopKCompressor::k_for(std::int64_t numel) const {
  if (numel == 0) return 0;
  const auto k = static_cast<std::int64_t>(std::ceil(fraction_ * static_cast<double>(numel)));
  return std::clamp<std::int64_t>(k, 1, numel);
}

std::size_t TopKCompressor::compressed_bytes(const tensor::Shape& shape) const {
  const std::int64_t k = k_for(tensor::shape_numel(shape));
  // int32 index + fp32 (or fp16) value per kept coordinate, plus the header.
  const std::size_t value_bytes = fp16_values_ ? sizeof(std::uint16_t) : sizeof(float);
  return sizeof(std::int64_t) +
         static_cast<std::size_t>(k) * (sizeof(std::int32_t) + value_bytes);
}

std::vector<std::byte> TopKCompressor::serialize(const tensor::TopKResult& sparse) {
  const auto k = static_cast<std::int64_t>(sparse.indices.size());
  std::vector<std::byte> out(sizeof(std::int64_t) +
                             static_cast<std::size_t>(k) * (sizeof(std::int32_t) + sizeof(float)));
  std::byte* p = out.data();
  std::memcpy(p, &k, sizeof(k));
  p += sizeof(k);
  for (auto idx : sparse.indices) {
    const auto idx32 = static_cast<std::int32_t>(idx);
    std::memcpy(p, &idx32, sizeof(idx32));
    p += sizeof(idx32);
  }
  std::memcpy(p, sparse.values.data(), sparse.values.size() * sizeof(float));
  return out;
}

tensor::TopKResult TopKCompressor::deserialize(std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(std::int64_t))
    throw std::invalid_argument("TopKCompressor::deserialize: truncated payload");
  std::int64_t k = 0;
  std::memcpy(&k, bytes.data(), sizeof(k));
  const std::size_t expected =
      sizeof(std::int64_t) + static_cast<std::size_t>(k) * (sizeof(std::int32_t) + sizeof(float));
  if (k < 0 || bytes.size() != expected)
    throw std::invalid_argument("TopKCompressor::deserialize: corrupt payload");
  tensor::TopKResult sparse;
  sparse.indices.resize(static_cast<std::size_t>(k));
  sparse.values.resize(static_cast<std::size_t>(k));
  const std::byte* p = bytes.data() + sizeof(k);
  for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
    std::int32_t idx32 = 0;
    std::memcpy(&idx32, p, sizeof(idx32));
    p += sizeof(idx32);
    sparse.indices[i] = idx32;
  }
  std::memcpy(sparse.values.data(), p, sparse.values.size() * sizeof(float));
  return sparse;
}

std::vector<std::byte> TopKCompressor::serialize_half(const tensor::TopKResult& sparse) {
  const auto k = static_cast<std::int64_t>(sparse.indices.size());
  std::vector<std::byte> out(sizeof(std::int64_t) + static_cast<std::size_t>(k) *
                                                        (sizeof(std::int32_t) +
                                                         sizeof(std::uint16_t)));
  std::byte* p = out.data();
  std::memcpy(p, &k, sizeof(k));
  p += sizeof(k);
  for (auto idx : sparse.indices) {
    const auto idx32 = static_cast<std::int32_t>(idx);
    std::memcpy(p, &idx32, sizeof(idx32));
    p += sizeof(idx32);
  }
  const auto halves = tensor::to_half(sparse.values);
  std::memcpy(p, halves.data(), halves.size() * sizeof(std::uint16_t));
  return out;
}

tensor::TopKResult TopKCompressor::deserialize_half(std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(std::int64_t))
    throw std::invalid_argument("TopKCompressor::deserialize_half: truncated payload");
  std::int64_t k = 0;
  std::memcpy(&k, bytes.data(), sizeof(k));
  const std::size_t expected =
      sizeof(std::int64_t) +
      static_cast<std::size_t>(k) * (sizeof(std::int32_t) + sizeof(std::uint16_t));
  if (k < 0 || bytes.size() != expected)
    throw std::invalid_argument("TopKCompressor::deserialize_half: corrupt payload");
  tensor::TopKResult sparse;
  sparse.indices.resize(static_cast<std::size_t>(k));
  sparse.values.resize(static_cast<std::size_t>(k));
  const std::byte* p = bytes.data() + sizeof(k);
  for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
    std::int32_t idx32 = 0;
    std::memcpy(&idx32, p, sizeof(idx32));
    p += sizeof(idx32);
    sparse.indices[i] = idx32;
  }
  std::vector<std::uint16_t> halves(static_cast<std::size_t>(k));
  std::memcpy(halves.data(), p, halves.size() * sizeof(std::uint16_t));
  tensor::from_half(halves, sparse.values);
  return sparse;
}

std::vector<std::byte> TopKCompressor::encode(const tensor::TopKResult& sparse) const {
  return fp16_values_ ? serialize_half(sparse) : serialize(sparse);
}

tensor::TopKResult TopKCompressor::decode(std::span<const std::byte> bytes) const {
  return fp16_values_ ? deserialize_half(bytes) : deserialize(bytes);
}

tensor::Tensor TopKCompressor::with_residual(LayerId layer, const tensor::Tensor& grad) const {
  if (!error_feedback_) return grad;
  const auto it = residuals_.find(layer);
  if (it == residuals_.end()) return grad;
  return tensor::add(grad, it->second);
}

AggregateStats TopKCompressor::aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                                         tensor::Tensor& grad) {
  AggregateStats stats;
  const std::int64_t n = grad.numel();
  stats.bytes_sent = compressed_bytes(grad.shape());

  stats::WallTimer encode_timer;
  tensor::Tensor work = with_residual(layer, grad);
  tensor::top_k_abs_into(work.data(), k_for(n), sparse_scratch_, &workspace_);
  const auto payload = encode(sparse_scratch_);
  if (error_feedback_) {
    // Residual = what the selection (and, in fp16 mode, the value
    // quantization) dropped: measured against the decoded estimate.
    tensor::Tensor kept(grad.shape());
    tensor::scatter(decode(payload), kept.data());
    residuals_[layer] = tensor::sub(work, kept);
  }
  stats.encode_seconds = encode_timer.seconds();

  // Not all-reduce compatible: gather everyone's sparse payload. Memory and
  // decode work grow linearly with p (the paper's BERT runs OOM past 32
  // GPUs for exactly this reason).
  const auto gathered = comm.allgather(rank, payload);

  stats::WallTimer decode_timer;
  grad.fill(0.0F);
  auto out = grad.data();
  for (const auto& msg : gathered) {
    const auto remote = decode(msg);
    for (std::size_t j = 0; j < remote.indices.size(); ++j)
      out[static_cast<std::size_t>(remote.indices[j])] += remote.values[j];
  }
  grad.scale(1.0F / static_cast<float>(comm.world_size()));
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor TopKCompressor::roundtrip(LayerId layer, const tensor::Tensor& grad) {
  tensor::Tensor work = with_residual(layer, grad);
  tensor::top_k_abs_into(work.data(), k_for(grad.numel()), sparse_scratch_, &workspace_);
  tensor::Tensor kept(grad.shape());
  tensor::scatter(decode(encode(sparse_scratch_)), kept.data());
  if (error_feedback_) residuals_[layer] = tensor::sub(work, kept);
  return kept;
}

std::vector<std::byte> TopKCompressor::serialize_state() const {
  tensor::ByteWriter writer;
  detail::write_tensor_map(writer, residuals_);
  return writer.take();
}

void TopKCompressor::restore_state(std::span<const std::byte> bytes) {
  tensor::ByteReader reader(bytes, name() + " state");
  residuals_ = detail::read_tensor_map(reader);
  reader.expect_done();
}


}  // namespace gradcomp::compress
