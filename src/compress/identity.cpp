#include "compress/identity.hpp"

namespace gradcomp::compress {

std::size_t IdentityCompressor::compressed_bytes(const tensor::Shape& shape) const {
  return static_cast<std::size_t>(tensor::shape_numel(shape)) * sizeof(float);
}

AggregateStats IdentityCompressor::aggregate(LayerId /*layer*/, int rank,
                                             comm::ThreadComm& comm, tensor::Tensor& grad) {
  comm.allreduce_sum(rank, grad.data());
  grad.scale(1.0F / static_cast<float>(comm.world_size()));
  return AggregateStats{0.0, 0.0, compressed_bytes(grad.shape())};
}

tensor::Tensor IdentityCompressor::roundtrip(LayerId /*layer*/, const tensor::Tensor& grad) {
  return grad;  // lossless
}

}  // namespace gradcomp::compress
