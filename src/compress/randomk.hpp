// RANDOM-K sparsification (Wangni et al. variant).
//
// All ranks draw the SAME k random coordinates each round from a shared
// seeded generator, so the compressed representation (the k values in index
// order) is summable and the aggregation is a plain all-reduce — Table 1
// classifies Random-k as all-reduce compatible but not layer-wise (it draws
// one index set over the whole flat gradient). Indices never travel on the
// wire; only k fp32 values do.
#pragma once

#include <unordered_map>

#include "compress/compressor.hpp"

namespace gradcomp::compress {

class RandomKCompressor final : public Compressor {
 public:
  explicit RandomKCompressor(double fraction, std::uint64_t seed = 42);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Traits traits() const override {
    return Traits{true, false, "sparsification"};
  }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;
  // Shared state for a rejoining rank: the per-layer round counters. A
  // joiner starting from round 0 would draw a DIFFERENT index set than the
  // survivors at round N and silently corrupt the all-reduce.
  [[nodiscard]] std::vector<std::byte> serialize_shared_state() const override;
  void restore_shared_state(std::span<const std::byte> bytes) override;

  [[nodiscard]] std::int64_t k_for(std::int64_t numel) const;
  // The shared index set for a given (layer, round, n). Deterministic in its
  // arguments so every rank derives the same set without communicating.
  [[nodiscard]] std::vector<std::int64_t> indices_for(LayerId layer, std::uint64_t round,
                                                      std::int64_t n) const;

 private:
  double fraction_;
  std::uint64_t seed_;
  std::unordered_map<LayerId, std::uint64_t> rounds_;
};

}  // namespace gradcomp::compress
