#include "compress/dgc.hpp"

#include "compress/state_io.hpp"

#include <cmath>
#include <stdexcept>

#include "compress/topk_compressor.hpp"
#include "stats/timer.hpp"

namespace gradcomp::compress {

DgcCompressor::DgcCompressor(double fraction, double momentum)
    : fraction_(fraction), momentum_(momentum) {
  if (!(fraction > 0.0) || fraction > 1.0)
    throw std::invalid_argument("DgcCompressor: fraction must be in (0, 1]");
  if (momentum < 0.0 || momentum >= 1.0)
    throw std::invalid_argument("DgcCompressor: momentum must be in [0, 1)");
}

std::string DgcCompressor::name() const {
  const int pct = static_cast<int>(std::lround(fraction_ * 100.0));
  return "dgc-" + std::to_string(pct) + "%";
}

std::int64_t DgcCompressor::k_for(std::int64_t numel) const {
  if (numel == 0) return 0;
  const auto k = static_cast<std::int64_t>(std::ceil(fraction_ * static_cast<double>(numel)));
  return std::clamp<std::int64_t>(k, 1, numel);
}

std::size_t DgcCompressor::compressed_bytes(const tensor::Shape& shape) const {
  const std::int64_t k = k_for(tensor::shape_numel(shape));
  return sizeof(std::int64_t) +
         static_cast<std::size_t>(k) * (sizeof(std::int32_t) + sizeof(float));
}

DgcCompressor::LayerState& DgcCompressor::state_for(LayerId layer, const tensor::Shape& shape) {
  auto& state = states_[layer];
  if (!state.initialized) {
    state.velocity = tensor::Tensor(shape);
    state.accumulation = tensor::Tensor(shape);
    state.initialized = true;
  }
  return state;
}

tensor::TopKResult DgcCompressor::select_and_clear(LayerId layer, const tensor::Tensor& grad) {
  LayerState& state = state_for(layer, grad.shape());
  // Momentum correction: u = m*u + g; accumulation: v = v + u.
  state.velocity.scale(static_cast<float>(momentum_));
  state.velocity.add_(grad);
  state.accumulation.add_(state.velocity);

  const auto sparse =
      tensor::top_k_abs(state.accumulation.data(), k_for(grad.numel()), &workspace_);

  // Transmitted coordinates stop accumulating (both u and v are cleared
  // there, per the reference implementation's masking).
  auto acc = state.accumulation.data();
  auto vel = state.velocity.data();
  for (auto idx : sparse.indices) {
    acc[static_cast<std::size_t>(idx)] = 0.0F;
    vel[static_cast<std::size_t>(idx)] = 0.0F;
  }
  return sparse;
}

AggregateStats DgcCompressor::aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                                        tensor::Tensor& grad) {
  AggregateStats stats;
  stats.bytes_sent = compressed_bytes(grad.shape());

  stats::WallTimer encode_timer;
  const auto sparse = select_and_clear(layer, grad);
  const auto payload = TopKCompressor::serialize(sparse);
  stats.encode_seconds = encode_timer.seconds();

  const auto gathered = comm.allgather(rank, payload);

  stats::WallTimer decode_timer;
  grad.fill(0.0F);
  auto out = grad.data();
  for (const auto& msg : gathered) {
    const auto remote = TopKCompressor::deserialize(msg);
    for (std::size_t j = 0; j < remote.indices.size(); ++j)
      out[static_cast<std::size_t>(remote.indices[j])] += remote.values[j];
  }
  grad.scale(1.0F / static_cast<float>(comm.world_size()));
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor DgcCompressor::roundtrip(LayerId layer, const tensor::Tensor& grad) {
  const auto sparse = select_and_clear(layer, grad);
  tensor::Tensor out(grad.shape());
  tensor::scatter(sparse, out.data());
  return out;
}

std::vector<std::byte> DgcCompressor::serialize_state() const {
  tensor::ByteWriter writer;
  writer.u64(states_.size());
  for (const LayerId key : detail::sorted_keys(states_)) {
    const LayerState& state = states_.at(key);
    writer.i64(key);
    writer.tensor(state.velocity);
    writer.tensor(state.accumulation);
  }
  return writer.take();
}

void DgcCompressor::restore_state(std::span<const std::byte> bytes) {
  tensor::ByteReader reader(bytes, name() + " state");
  std::unordered_map<LayerId, LayerState> states;
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const LayerId key = reader.i64();
    LayerState state;
    state.velocity = reader.tensor();
    state.accumulation = reader.tensor();
    state.initialized = true;
    states.emplace(key, std::move(state));
  }
  reader.expect_done();
  states_ = std::move(states);
}


}  // namespace gradcomp::compress
