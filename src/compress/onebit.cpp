#include "compress/onebit.hpp"

#include "compress/state_io.hpp"

#include <cstring>
#include <stdexcept>

#include "stats/timer.hpp"
#include "tensor/simd.hpp"

namespace gradcomp::compress {

std::size_t OneBitCompressor::compressed_bytes(const tensor::Shape& shape) const {
  const auto n = static_cast<std::size_t>(tensor::shape_numel(shape));
  return 2 * sizeof(float) + (n + 7) / 8;
}

std::vector<std::byte> OneBitCompressor::encode(std::span<const float> values) {
  double pos_sum = 0.0;
  double neg_sum = 0.0;
  std::size_t pos_count = 0;
  for (float v : values) {
    if (v >= 0.0F) {
      pos_sum += v;
      ++pos_count;
    } else {
      neg_sum += v;
    }
  }
  const std::size_t neg_count = values.size() - pos_count;
  const float pos_level = pos_count > 0 ? static_cast<float>(pos_sum / pos_count) : 0.0F;
  const float neg_level = neg_count > 0 ? static_cast<float>(neg_sum / neg_count) : 0.0F;

  std::vector<std::byte> out(2 * sizeof(float) + (values.size() + 7) / 8, std::byte{0});
  std::memcpy(out.data(), &pos_level, sizeof(float));
  std::memcpy(out.data() + sizeof(float), &neg_level, sizeof(float));
  // Same wire layout as SignSGD (bit i%8 of byte i/8 is `v >= 0`), so the
  // dispatched sign-pack kernel is shared.
  tensor::simd::pack_signs(values.data(), static_cast<std::int64_t>(values.size()),
                           out.data() + 2 * sizeof(float));
  return out;
}

std::vector<float> OneBitCompressor::decode(std::span<const std::byte> payload, std::size_t n) {
  if (payload.size() != 2 * sizeof(float) + (n + 7) / 8)
    throw std::invalid_argument("OneBitCompressor::decode: payload size mismatch");
  float pos_level = 0.0F;
  float neg_level = 0.0F;
  std::memcpy(&pos_level, payload.data(), sizeof(float));
  std::memcpy(&neg_level, payload.data() + sizeof(float), sizeof(float));
  const std::byte* bits = payload.data() + 2 * sizeof(float);
  std::vector<float> out(n);
  tensor::simd::unpack_select(bits, static_cast<std::int64_t>(n), pos_level, neg_level,
                              out.data());
  return out;
}

std::vector<std::byte> OneBitCompressor::encode_with_feedback(LayerId layer,
                                                              const tensor::Tensor& grad) {
  tensor::Tensor work = grad;
  const auto it = residuals_.find(layer);
  if (it != residuals_.end()) work.add_(it->second);

  const auto payload = encode(work.data());
  const auto estimate = decode(payload, static_cast<std::size_t>(work.numel()));
  tensor::Tensor residual = work;
  auto res = residual.data();
  for (std::size_t i = 0; i < estimate.size(); ++i) res[i] -= estimate[i];
  residuals_[layer] = std::move(residual);
  return payload;
}

AggregateStats OneBitCompressor::aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                                           tensor::Tensor& grad) {
  AggregateStats stats;
  const auto n = static_cast<std::size_t>(grad.numel());
  stats.bytes_sent = compressed_bytes(grad.shape());

  stats::WallTimer encode_timer;
  const auto payload = encode_with_feedback(layer, grad);
  stats.encode_seconds = encode_timer.seconds();

  const auto gathered = comm.allgather(rank, payload);

  stats::WallTimer decode_timer;
  grad.fill(0.0F);
  auto out = grad.data();
  for (const auto& msg : gathered) {
    const auto values = decode(msg, n);
    for (std::size_t i = 0; i < n; ++i) out[i] += values[i];
  }
  grad.scale(1.0F / static_cast<float>(comm.world_size()));
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor OneBitCompressor::roundtrip(LayerId layer, const tensor::Tensor& grad) {
  const auto payload = encode_with_feedback(layer, grad);
  return tensor::Tensor(grad.shape(),
                        decode(payload, static_cast<std::size_t>(grad.numel())));
}

std::vector<std::byte> OneBitCompressor::serialize_state() const {
  tensor::ByteWriter writer;
  detail::write_tensor_map(writer, residuals_);
  return writer.take();
}

void OneBitCompressor::restore_state(std::span<const std::byte> bytes) {
  tensor::ByteReader reader(bytes, name() + " state");
  residuals_ = detail::read_tensor_map(reader);
  reader.expect_done();
}


}  // namespace gradcomp::compress
