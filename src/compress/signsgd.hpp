// SIGNSGD with majority vote (Bernstein et al.), the paper's representative
// quantization method.
//
// Each rank transmits one bit per fp32 coordinate (~32x compression). The
// aggregate is sign(sum_i sign(g_i)) — a majority vote, which is NOT
// associative, so aggregation needs an all-gather whose traffic grows
// linearly with world size (the root cause of Figure 6's blow-up: 1,075 ms
// vs 265 ms for the baseline at 96 GPUs on ResNet-101).
//
// Optional error feedback follows EF-signSGD (Karimireddy et al.): the
// transmitted estimate is (||x||_1 / n) * sign(x) and the residual is kept
// locally; aggregation then averages the scaled signs.
#pragma once

#include <unordered_map>
#include <vector>

#include "compress/compressor.hpp"

namespace gradcomp::compress {

class SignSgdCompressor final : public Compressor {
 public:
  explicit SignSgdCompressor(bool error_feedback = false)
      : error_feedback_(error_feedback) {}

  [[nodiscard]] std::string name() const override {
    return error_feedback_ ? "ef-signsgd" : "signsgd";
  }
  [[nodiscard]] Traits traits() const override {
    return Traits{false, true, "quantization"};
  }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;
  [[nodiscard]] std::vector<std::byte> serialize_state() const override;
  void restore_state(std::span<const std::byte> bytes) override;

  // Bit packing used on the wire (exposed for tests). Word-at-a-time: 32
  // signs per uint32_t inner loop, branch-free, parallel over word chunks;
  // the LSB-first byte layout is unchanged.
  [[nodiscard]] static std::vector<std::byte> pack_signs(std::span<const float> values);
  // Unpacks `n` signs into +1/-1 floats.
  [[nodiscard]] static std::vector<float> unpack_signs(std::span<const std::byte> bits,
                                                       std::size_t n);
  // Allocation-free variants writing into caller memory (`bits` must hold
  // (n+7)/8 bytes, `out` exactly n floats).
  static void pack_signs_into(std::span<const float> values, std::span<std::byte> bits);
  static void unpack_signs_into(std::span<const std::byte> bits, std::size_t n,
                                std::span<float> out);

 private:
  // Adds the residual into a working copy and returns it (EF mode), or
  // returns the gradient unchanged.
  [[nodiscard]] tensor::Tensor with_residual(LayerId layer, const tensor::Tensor& grad) const;
  void update_residual(LayerId layer, const tensor::Tensor& input,
                       const tensor::Tensor& estimate);

  bool error_feedback_;
  std::unordered_map<LayerId, tensor::Tensor> residuals_;
  std::vector<float> unpack_scratch_;  // decode-side reuse (one rank's signs)
};

}  // namespace gradcomp::compress
