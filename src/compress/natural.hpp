// NATURAL COMPRESSION (Horvath et al.), referenced in the paper's
// quantization survey (Section 2.1).
//
// Each coordinate is stochastically rounded to a signed power of two: for
// |v| in [2^e, 2^(e+1)) the value becomes 2^e with probability
// (2^(e+1)-|v|)/2^e, else 2^(e+1) — an unbiased quantizer whose output fits
// in one byte (sign + 7-bit biased exponent). Encode is a single cheap pass,
// making it the "minimal encode time, modest ratio (4x)" end of the design
// space the paper's Figure 13 argues for; aggregation still needs an
// all-gather (sums of powers of two are not powers of two).
#pragma once

#include "compress/compressor.hpp"
#include "tensor/rng.hpp"

namespace gradcomp::compress {

class NaturalCompressor final : public Compressor {
 public:
  explicit NaturalCompressor(std::uint64_t seed = 42) : rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "natural"; }
  [[nodiscard]] Traits traits() const override {
    return Traits{false, true, "quantization"};
  }
  [[nodiscard]] std::size_t compressed_bytes(const tensor::Shape& shape) const override;

  AggregateStats aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                           tensor::Tensor& grad) override;
  [[nodiscard]] tensor::Tensor roundtrip(LayerId layer, const tensor::Tensor& grad) override;

  // Wire codes: 0 encodes zero; otherwise bit7 = sign, bits 0-6 = exponent
  // biased by 64 (covering 2^-63 .. 2^62).
  [[nodiscard]] std::vector<std::byte> encode(std::span<const float> values);
  [[nodiscard]] static std::vector<float> decode(std::span<const std::byte> payload,
                                                 std::size_t n);

 private:
  tensor::Rng rng_;
};

}  // namespace gradcomp::compress
