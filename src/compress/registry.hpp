// Method registry: the classification the paper presents as Table 1.
#pragma once

#include <string>
#include <vector>

#include "compress/compressor.hpp"

namespace gradcomp::compress {

struct MethodInfo {
  std::string name;        // as printed in Table 1
  bool allreduce;          // aggregation operator is associative
  bool layerwise;          // can compress per layer (enables overlap)
  std::string family;
  bool implemented;        // has a Compressor in this library
};

// The nine rows of the paper's Table 1, in paper order, annotated with
// whether this library ships a working implementation.
[[nodiscard]] std::vector<MethodInfo> table1_registry();

}  // namespace gradcomp::compress
