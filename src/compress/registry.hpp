// Method registry: the classification the paper presents as Table 1.
#pragma once

#include <string>
#include <vector>

#include "compress/compressor.hpp"

namespace gradcomp::compress {

struct MethodInfo {
  std::string name;        // as printed in Table 1
  bool allreduce;          // aggregation operator is associative
  bool layerwise;          // can compress per layer (enables overlap)
  std::string family;
  bool implemented;        // has a Compressor in this library
};

// The nine rows of the paper's Table 1, in paper order, annotated with
// whether this library ships a working implementation.
[[nodiscard]] std::vector<MethodInfo> table1_registry();

// --- CompressorConfig wire form --------------------------------------------
//
// Canonical string form "method key=value ...": the method name followed by
// exactly the parameters that method consumes (in a fixed key order), with
// doubles printed at round-trip precision. The adaptive controller logs its
// decisions in this form, so a recorded run can be replayed exactly.
//
//   config_from_string(config_to_string(c)) reproduces c up to the fields
//   the method actually reads — the definition of equality below.
[[nodiscard]] std::string config_to_string(const CompressorConfig& config);

// Inverse of config_to_string; accepts any subset of the method's keys
// (missing keys keep their defaults). Throws std::invalid_argument on an
// unknown method, an unknown or irrelevant key, or a malformed value.
[[nodiscard]] CompressorConfig config_from_string(const std::string& text);

// Inverse of method_name(); throws std::invalid_argument on unknown names.
[[nodiscard]] Method method_from_name(const std::string& name);

// Semantic equality: same method and same values for every parameter that
// method consumes (fields the method ignores do not participate).
[[nodiscard]] bool operator==(const CompressorConfig& a, const CompressorConfig& b);
[[nodiscard]] inline bool operator!=(const CompressorConfig& a, const CompressorConfig& b) {
  return !(a == b);
}

}  // namespace gradcomp::compress
