#include "compress/terngrad.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "stats/timer.hpp"
#include "tensor/simd.hpp"

namespace gradcomp::compress {

std::size_t TernGradCompressor::compressed_bytes(const tensor::Shape& shape) const {
  const auto n = static_cast<std::size_t>(tensor::shape_numel(shape));
  return sizeof(float) + (n + 3) / 4;  // 2 bits per coordinate
}

std::vector<std::byte> TernGradCompressor::encode(std::span<const float> values) {
  float scale = 0.0F;
  for (float v : values) scale = std::max(scale, std::abs(v));

  std::vector<std::byte> out(sizeof(float) + (values.size() + 3) / 4, std::byte{0});
  std::memcpy(out.data(), &scale, sizeof(scale));
  auto* codes = reinterpret_cast<std::uint8_t*>(out.data() + sizeof(float));
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint8_t code = 0;  // zero
    if (scale > 0.0F) {
      const double keep_prob = std::abs(static_cast<double>(values[i])) / scale;
      if (rng_.next_double() < keep_prob) code = values[i] >= 0.0F ? 1 : 2;
    }
    codes[i / 4] |= static_cast<std::uint8_t>(code << (2 * (i % 4)));
  }
  return out;
}

std::vector<float> TernGradCompressor::decode(std::span<const std::byte> payload,
                                              std::size_t n) {
  if (payload.size() != sizeof(float) + (n + 3) / 4)
    throw std::invalid_argument("TernGradCompressor::decode: payload size mismatch");
  float scale = 0.0F;
  std::memcpy(&scale, payload.data(), sizeof(scale));
  const auto* codes = reinterpret_cast<const std::uint8_t*>(payload.data() + sizeof(float));
  std::vector<float> out(n);
  // Decode is the hot direction; encode keeps its sequential RNG stream.
  tensor::simd::terngrad_decode(codes, static_cast<std::int64_t>(n), scale, out.data());
  return out;
}

AggregateStats TernGradCompressor::aggregate(LayerId /*layer*/, int rank,
                                             comm::ThreadComm& comm, tensor::Tensor& grad) {
  AggregateStats stats;
  const auto n = static_cast<std::size_t>(grad.numel());
  stats.bytes_sent = compressed_bytes(grad.shape());

  stats::WallTimer encode_timer;
  const auto payload = encode(grad.data());
  stats.encode_seconds = encode_timer.seconds();

  const auto gathered = comm.allgather(rank, payload);

  stats::WallTimer decode_timer;
  grad.fill(0.0F);
  auto out = grad.data();
  for (const auto& msg : gathered) {
    const auto values = decode(msg, n);
    for (std::size_t i = 0; i < n; ++i) out[i] += values[i];
  }
  grad.scale(1.0F / static_cast<float>(comm.world_size()));
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor TernGradCompressor::roundtrip(LayerId /*layer*/, const tensor::Tensor& grad) {
  const auto payload = encode(grad.data());
  return tensor::Tensor(grad.shape(), decode(payload, static_cast<std::size_t>(grad.numel())));
}

}  // namespace gradcomp::compress
