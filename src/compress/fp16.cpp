#include "compress/fp16.hpp"

#include "stats/timer.hpp"
#include "tensor/half.hpp"

namespace gradcomp::compress {

std::size_t Fp16Compressor::compressed_bytes(const tensor::Shape& shape) const {
  return static_cast<std::size_t>(tensor::shape_numel(shape)) * sizeof(std::uint16_t);
}

AggregateStats Fp16Compressor::aggregate(LayerId /*layer*/, int rank, comm::ThreadComm& comm,
                                         tensor::Tensor& grad) {
  AggregateStats stats;
  stats.bytes_sent = compressed_bytes(grad.shape());

  // Encode: quantize to half precision (the lossy step).
  stats::WallTimer encode_timer;
  const auto halves = tensor::to_half(grad.data());
  tensor::from_half(halves, grad.data());
  stats.encode_seconds = encode_timer.seconds();

  // The all-reduce transports 16-bit values; the ring reduction itself runs
  // on the dequantized values (NCCL reduces fp16 natively; numerically our
  // float-sum is a faithful stand-in).
  comm.allreduce_sum(rank, grad.data());
  grad.scale(1.0F / static_cast<float>(comm.world_size()));

  // Decode: the received aggregate is re-narrowed by the wire format.
  stats::WallTimer decode_timer;
  const auto out_halves = tensor::to_half(grad.data());
  tensor::from_half(out_halves, grad.data());
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor Fp16Compressor::roundtrip(LayerId /*layer*/, const tensor::Tensor& grad) {
  tensor::Tensor out = grad;
  const auto halves = tensor::to_half(out.data());
  tensor::from_half(halves, out.data());
  return out;
}

}  // namespace gradcomp::compress
