#include "compress/powersgd.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/timer.hpp"
#include "tensor/linalg.hpp"
#include "tensor/rng.hpp"

namespace gradcomp::compress {

PowerSgdCompressor::PowerSgdCompressor(int rank, bool warm_start, std::uint64_t seed)
    : rank_(rank), warm_start_(warm_start), seed_(seed) {
  if (rank < 1) throw std::invalid_argument("PowerSgdCompressor: rank must be >= 1");
}

std::string PowerSgdCompressor::name() const {
  return "powersgd-r" + std::to_string(rank_);
}

int PowerSgdCompressor::effective_rank(std::int64_t m, std::int64_t n) const {
  return static_cast<int>(std::min<std::int64_t>({rank_, m, n}));
}

std::size_t PowerSgdCompressor::compressed_bytes(const tensor::Shape& shape) const {
  // Matricized view of this shape.
  const std::int64_t numel = tensor::shape_numel(shape);
  if (numel == 0) return 0;
  const std::int64_t m = shape.empty() ? numel : shape.front();
  const std::int64_t n = m > 0 ? numel / m : 0;
  if (m <= 1 || n <= 1) return static_cast<std::size_t>(numel) * sizeof(float);
  const int r = effective_rank(m, n);
  return static_cast<std::size_t>(m + n) * static_cast<std::size_t>(r) * sizeof(float);
}

PowerSgdCompressor::LayerState& PowerSgdCompressor::state_for(LayerId layer, std::int64_t m,
                                                              std::int64_t n) {
  auto& state = states_[layer];
  if (!state.initialized) {
    const int r = effective_rank(m, n);
    // Same seed on every rank -> identical cold-start Q, a correctness
    // requirement for the distributed power iteration.
    tensor::Rng rng(seed_ ^ (static_cast<std::uint64_t>(layer) * 0x9E3779B97F4A7C15ULL));
    state.q = tensor::Tensor::randn({n, r}, rng);
    tensor::orthonormalize_columns(state.q);
    state.residual = tensor::Tensor({m, n});
    state.initialized = true;
  }
  return state;
}

AggregateStats PowerSgdCompressor::aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                                             tensor::Tensor& grad) {
  AggregateStats stats;
  const float inv_p = 1.0F / static_cast<float>(comm.world_size());

  tensor::Tensor mat = grad.matricize();
  const std::int64_t m = mat.dim(0);
  const std::int64_t n = mat.dim(1);
  if (m <= 1 || n <= 1) {
    // 1-D parameter: not worth factoring; plain averaged all-reduce.
    comm.allreduce_sum(rank, grad.data());
    grad.scale(inv_p);
    stats.bytes_sent = grad.byte_size();
    return stats;
  }

  auto& state = state_for(layer, m, n);
  stats.bytes_sent = compressed_bytes(grad.shape());

  // --- Encode (left factor): M = grad + residual, P = M Q.
  stats::WallTimer encode_timer;
  mat.add_(state.residual);
  tensor::Tensor p_mat = tensor::matmul(mat, state.q);
  stats.encode_seconds = encode_timer.seconds();

  comm.allreduce_sum(rank, p_mat.data());
  p_mat.scale(inv_p);

  // --- Encode (right factor): orthonormalize P, Q = M^T P.
  encode_timer.reset();
  tensor::orthonormalize_columns(p_mat);
  tensor::Tensor q_new = tensor::matmul(mat, p_mat, tensor::Transpose::kYes);
  stats.encode_seconds += encode_timer.seconds();

  comm.allreduce_sum(rank, q_new.data());
  q_new.scale(inv_p);

  // --- Decode: low-rank reconstruction + error-feedback update.
  stats::WallTimer decode_timer;
  tensor::Tensor decoded = tensor::matmul(p_mat, q_new, tensor::Transpose::kNo,
                                          tensor::Transpose::kYes);
  // residual = (grad + old residual) - decoded.
  state.residual = tensor::sub(mat, decoded);
  if (warm_start_) state.q = q_new;
  grad = decoded.reshape(grad.shape());
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor PowerSgdCompressor::roundtrip(LayerId layer, const tensor::Tensor& grad) {
  tensor::Tensor mat = grad.matricize();
  const std::int64_t m = mat.dim(0);
  const std::int64_t n = mat.dim(1);
  if (m <= 1 || n <= 1) return grad;  // transmitted uncompressed

  auto& state = state_for(layer, m, n);
  mat.add_(state.residual);
  tensor::Tensor p_mat = tensor::matmul(mat, state.q);
  tensor::orthonormalize_columns(p_mat);
  tensor::Tensor q_new = tensor::matmul(mat, p_mat, tensor::Transpose::kYes);
  tensor::Tensor decoded = tensor::matmul(p_mat, q_new, tensor::Transpose::kNo,
                                          tensor::Transpose::kYes);
  state.residual = tensor::sub(mat, decoded);
  if (warm_start_) state.q = q_new;
  return decoded.reshape(grad.shape());
}

}  // namespace gradcomp::compress
