#include "compress/powersgd.hpp"

#include "compress/state_io.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/timer.hpp"
#include "tensor/linalg.hpp"
#include "tensor/rng.hpp"

namespace gradcomp::compress {

PowerSgdCompressor::PowerSgdCompressor(int rank, bool warm_start, std::uint64_t seed)
    : rank_(rank), warm_start_(warm_start), seed_(seed) {
  if (rank < 1) throw std::invalid_argument("PowerSgdCompressor: rank must be >= 1");
}

std::string PowerSgdCompressor::name() const {
  return "powersgd-r" + std::to_string(rank_);
}

int PowerSgdCompressor::effective_rank(std::int64_t m, std::int64_t n) const {
  return static_cast<int>(std::min<std::int64_t>({rank_, m, n}));
}

std::size_t PowerSgdCompressor::compressed_bytes(const tensor::Shape& shape) const {
  // Matricized view of this shape.
  const std::int64_t numel = tensor::shape_numel(shape);
  if (numel == 0) return 0;
  const std::int64_t m = shape.empty() ? numel : shape.front();
  const std::int64_t n = m > 0 ? numel / m : 0;
  if (m <= 1 || n <= 1) return static_cast<std::size_t>(numel) * sizeof(float);
  const int r = effective_rank(m, n);
  return static_cast<std::size_t>(m + n) * static_cast<std::size_t>(r) * sizeof(float);
}

PowerSgdCompressor::LayerState& PowerSgdCompressor::state_for(LayerId layer, std::int64_t m,
                                                              std::int64_t n) {
  auto& state = states_[layer];
  if (!state.initialized) {
    const int r = effective_rank(m, n);
    // Same seed on every rank -> identical cold-start Q, a correctness
    // requirement for the distributed power iteration.
    tensor::Rng rng(seed_ ^ (static_cast<std::uint64_t>(layer) * 0x9E3779B97F4A7C15ULL));
    state.q = tensor::Tensor::randn({n, r}, rng);
    tensor::orthonormalize_columns(state.q);
    state.residual = tensor::Tensor({m, n});
    state.initialized = true;
  }
  return state;
}

void PowerSgdCompressor::matricize_into(const tensor::Tensor& grad, std::int64_t m,
                                        std::int64_t n, tensor::Tensor& out) {
  // Row-major flattening: the matricized view has identical flat data, so
  // this is a copy into reused storage (no per-step allocation once shaped).
  if (out.ndim() != 2 || out.dim(0) != m || out.dim(1) != n) out = tensor::Tensor({m, n});
  std::copy(grad.data().begin(), grad.data().end(), out.data().begin());
}

AggregateStats PowerSgdCompressor::aggregate(LayerId layer, int rank, comm::ThreadComm& comm,
                                             tensor::Tensor& grad) {
  AggregateStats stats;
  const float inv_p = 1.0F / static_cast<float>(comm.world_size());

  const std::int64_t m = grad.ndim() == 0 ? grad.numel() : grad.shape().front();
  const std::int64_t n = m > 0 ? grad.numel() / m : 1;
  if (m <= 1 || n <= 1) {
    // 1-D parameter: not worth factoring; plain averaged all-reduce.
    comm.allreduce_sum(rank, grad.data());
    grad.scale(inv_p);
    stats.bytes_sent = grad.byte_size();
    return stats;
  }

  auto& state = state_for(layer, m, n);
  stats.bytes_sent = compressed_bytes(grad.shape());

  // --- Encode (left factor): M = grad + residual, P = M Q.
  stats::WallTimer encode_timer;
  matricize_into(grad, m, n, state.mat);
  state.mat.add_(state.residual);
  tensor::matmul_into(state.mat, state.q, tensor::Transpose::kNo, tensor::Transpose::kNo,
                      state.p);
  stats.encode_seconds = encode_timer.seconds();

  comm.allreduce_sum(rank, state.p.data());
  state.p.scale(inv_p);

  // --- Encode (right factor): orthonormalize P, Q = M^T P.
  encode_timer.reset();
  tensor::orthonormalize_columns(state.p);
  tensor::matmul_into(state.mat, state.p, tensor::Transpose::kYes, tensor::Transpose::kNo,
                      state.q_new);
  stats.encode_seconds += encode_timer.seconds();

  comm.allreduce_sum(rank, state.q_new.data());
  state.q_new.scale(inv_p);

  // --- Decode: low-rank reconstruction + error-feedback update.
  stats::WallTimer decode_timer;
  tensor::matmul_into(state.p, state.q_new, tensor::Transpose::kNo, tensor::Transpose::kYes,
                      state.decoded);
  // residual = (grad + old residual) - decoded, written in place.
  state.residual = state.mat;
  state.residual.sub_(state.decoded);
  if (warm_start_) state.q = state.q_new;
  std::copy(state.decoded.data().begin(), state.decoded.data().end(), grad.data().begin());
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor PowerSgdCompressor::roundtrip(LayerId layer, const tensor::Tensor& grad) {
  const std::int64_t m = grad.ndim() == 0 ? grad.numel() : grad.shape().front();
  const std::int64_t n = m > 0 ? grad.numel() / m : 1;
  if (m <= 1 || n <= 1) return grad;  // transmitted uncompressed

  auto& state = state_for(layer, m, n);
  matricize_into(grad, m, n, state.mat);
  state.mat.add_(state.residual);
  tensor::matmul_into(state.mat, state.q, tensor::Transpose::kNo, tensor::Transpose::kNo,
                      state.p);
  tensor::orthonormalize_columns(state.p);
  tensor::matmul_into(state.mat, state.p, tensor::Transpose::kYes, tensor::Transpose::kNo,
                      state.q_new);
  tensor::matmul_into(state.p, state.q_new, tensor::Transpose::kNo, tensor::Transpose::kYes,
                      state.decoded);
  state.residual = state.mat;
  state.residual.sub_(state.decoded);
  if (warm_start_) state.q = state.q_new;
  return state.decoded.reshape(grad.shape());
}

std::vector<std::byte> PowerSgdCompressor::serialize_state() const {
  tensor::ByteWriter writer;
  writer.u64(states_.size());
  for (const LayerId key : detail::sorted_keys(states_)) {
    const LayerState& state = states_.at(key);
    writer.i64(key);
    writer.tensor(state.q);
    writer.tensor(state.residual);
  }
  return writer.take();
}

void PowerSgdCompressor::restore_state(std::span<const std::byte> bytes) {
  tensor::ByteReader reader(bytes, name() + " state");
  std::unordered_map<LayerId, LayerState> states;
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const LayerId key = reader.i64();
    LayerState state;
    state.q = reader.tensor();
    state.residual = reader.tensor();
    // Scratch tensors (mat, p, q_new, decoded) are re-sized on demand by
    // matricize_into / matmul_into.
    state.initialized = true;
    states.emplace(key, std::move(state));
  }
  reader.expect_done();
  states_ = std::move(states);
}

std::vector<std::byte> PowerSgdCompressor::serialize_shared_state() const {
  tensor::ByteWriter writer;
  writer.u64(states_.size());
  for (const LayerId key : detail::sorted_keys(states_)) {
    const LayerState& state = states_.at(key);
    writer.i64(key);
    // The residual shape (m x n) is not derivable from Q (n x r) alone, so
    // carry m explicitly; the joiner's residual is a fresh zero tensor.
    writer.i64(state.residual.dim(0));
    writer.tensor(state.q);
  }
  return writer.take();
}

void PowerSgdCompressor::restore_shared_state(std::span<const std::byte> bytes) {
  tensor::ByteReader reader(bytes, name() + " shared state");
  std::unordered_map<LayerId, LayerState> states;
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const LayerId key = reader.i64();
    const std::int64_t m = reader.i64();
    LayerState state;
    state.q = reader.tensor();
    state.residual = tensor::Tensor({m, state.q.dim(0)});  // zero error feedback
    state.initialized = true;
    states.emplace(key, std::move(state));
  }
  reader.expect_done();
  states_ = std::move(states);
}

}  // namespace gradcomp::compress
