#include "compress/qsgd.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "stats/timer.hpp"
#include "tensor/simd.hpp"

namespace gradcomp::compress {

QsgdCompressor::QsgdCompressor(int levels, std::uint64_t seed) : levels_(levels), rng_(seed) {
  if (levels < 1 || levels > 127)
    throw std::invalid_argument("QsgdCompressor: levels must be in [1, 127]");
}

std::size_t QsgdCompressor::compressed_bytes(const tensor::Shape& shape) const {
  return sizeof(float) + static_cast<std::size_t>(tensor::shape_numel(shape));
}

std::vector<std::byte> QsgdCompressor::encode(std::span<const float> values) {
  double norm_sq = 0.0;
  for (float v : values) norm_sq += static_cast<double>(v) * static_cast<double>(v);
  const auto norm = static_cast<float>(std::sqrt(norm_sq));

  std::vector<std::byte> out(sizeof(float) + values.size());
  std::memcpy(out.data(), &norm, sizeof(norm));
  auto* codes = reinterpret_cast<std::uint8_t*>(out.data() + sizeof(float));
  const double s = levels_;
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint8_t code = 0;
    if (norm > 0.0F) {
      const double ratio = std::abs(static_cast<double>(values[i])) / norm * s;
      auto level = static_cast<std::uint32_t>(ratio);  // floor
      // Stochastic rounding keeps the quantizer unbiased.
      if (rng_.next_double() < ratio - static_cast<double>(level)) ++level;
      if (level > 127U) level = 127U;
      code = static_cast<std::uint8_t>(level);
    }
    if (values[i] < 0.0F) code |= 0x80U;
    codes[i] = code;
  }
  return out;
}

std::vector<float> QsgdCompressor::decode(std::span<const std::byte> payload, std::size_t n,
                                          int levels) {
  if (payload.size() != sizeof(float) + n)
    throw std::invalid_argument("QsgdCompressor::decode: payload size mismatch");
  float norm = 0.0F;
  std::memcpy(&norm, payload.data(), sizeof(norm));
  const auto* codes = reinterpret_cast<const std::uint8_t*>(payload.data() + sizeof(float));
  std::vector<float> out(n);
  // Decode is the hot direction (p messages per aggregate); encode stays
  // scalar because its stochastic rounding consumes a sequential RNG stream.
  tensor::simd::qsgd_decode(codes, static_cast<std::int64_t>(n), norm,
                            static_cast<float>(levels), out.data());
  return out;
}

AggregateStats QsgdCompressor::aggregate(LayerId /*layer*/, int rank, comm::ThreadComm& comm,
                                         tensor::Tensor& grad) {
  AggregateStats stats;
  const auto n = static_cast<std::size_t>(grad.numel());
  stats.bytes_sent = compressed_bytes(grad.shape());

  stats::WallTimer encode_timer;
  const auto payload = encode(grad.data());
  stats.encode_seconds = encode_timer.seconds();

  const auto gathered = comm.allgather(rank, payload);

  stats::WallTimer decode_timer;
  grad.fill(0.0F);
  auto out = grad.data();
  for (const auto& msg : gathered) {
    const auto values = decode(msg, n, levels_);
    for (std::size_t i = 0; i < n; ++i) out[i] += values[i];
  }
  grad.scale(1.0F / static_cast<float>(comm.world_size()));
  stats.decode_seconds = decode_timer.seconds();
  return stats;
}

tensor::Tensor QsgdCompressor::roundtrip(LayerId /*layer*/, const tensor::Tensor& grad) {
  const auto payload = encode(grad.data());
  return tensor::Tensor(grad.shape(),
                        decode(payload, static_cast<std::size_t>(grad.numel()), levels_));
}

}  // namespace gradcomp::compress
