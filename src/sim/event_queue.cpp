#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace gradcomp::sim {

void EventQueue::schedule(double at_s, Callback fn) {
  if (at_s < now_) throw std::invalid_argument("EventQueue::schedule: time in the past");
  events_.push(Event{at_s, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_after(double delay_s, Callback fn) {
  if (delay_s < 0) throw std::invalid_argument("EventQueue::schedule_after: negative delay");
  schedule(now_ + delay_s, std::move(fn));
}

double EventQueue::run() {
  while (!events_.empty()) {
    // priority_queue::top returns const&; move the callback out via a copy of
    // the wrapper (cheap: std::function move after const_cast is UB-prone,
    // so copy).
    Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ev.fn();
  }
  return now_;
}

}  // namespace gradcomp::sim
