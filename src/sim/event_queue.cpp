#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace gradcomp::sim {

void EventQueue::schedule(Seconds at, Callback fn) {
  if (at < now_) throw std::invalid_argument("EventQueue::schedule: time in the past");
  events_.push(Event{at, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_after(Seconds delay, Callback fn) {
  if (delay < Seconds{}) throw std::invalid_argument("EventQueue::schedule_after: negative delay");
  schedule(now_ + delay, std::move(fn));
}

EventQueue::Seconds EventQueue::run() {
  while (!events_.empty()) {
    // priority_queue::top returns const&; move the callback out via a copy of
    // the wrapper (cheap: std::function move after const_cast is UB-prone,
    // so copy).
    Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ev.fn();
  }
  return now_;
}

}  // namespace gradcomp::sim
