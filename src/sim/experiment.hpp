// Weak-scaling experiment driver, replicating the paper's measurement
// protocol (Section 3.2): run 110 iterations, discard the first 10, report
// mean and standard deviation over the remaining 100.
#pragma once

#include <vector>

#include "sim/ddp_sim.hpp"
#include "stats/summary.hpp"

namespace gradcomp::sim {

struct MeasurementProtocol {
  int iterations = 110;
  int warmup = 10;
};

struct Measurement {
  Seconds mean;
  Seconds stddev;
  Seconds mean_encode;
  Seconds mean_decode;
  Seconds mean_comm;
};

// Repeated simulated iterations of one configuration.
[[nodiscard]] Measurement measure(const core::Cluster& cluster, const SimOptions& options,
                                  const compress::CompressorConfig& config,
                                  const core::Workload& workload,
                                  const MeasurementProtocol& protocol = {});

struct ScalingPoint {
  int workers = 0;
  Measurement sync;
  Measurement compressed;

  [[nodiscard]] double speedup() const {
    return compressed.mean.value() > 0 ? sync.mean / compressed.mean : 0.0;
  }
};

// Weak scaling sweep: per-worker batch fixed, worker count varies
// (Figures 4-6). Worker counts where the method would exceed `max_workers`
// constraints (e.g. the paper's BERT OOM past 32 GPUs for all-gather
// methods) are the caller's concern; this runs what it is given.
[[nodiscard]] std::vector<ScalingPoint> weak_scaling(
    core::Cluster cluster, const SimOptions& options, const compress::CompressorConfig& config,
    const core::Workload& workload, const std::vector<int>& worker_counts,
    const MeasurementProtocol& protocol = {});

}  // namespace gradcomp::sim
