#include "sim/probe.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/rng.hpp"

namespace gradcomp::sim {

NetworkEstimate probe_network(const core::Cluster& cluster, const ProbeOptions& options) {
  if (cluster.world_size < 2)
    throw std::invalid_argument("probe_network: need at least two workers");
  if (options.jitter_frac < 0.0)
    throw std::invalid_argument("probe_network: jitter_frac must be >= 0");
  if (options.alpha_probe.value() <= 0.0)
    throw std::invalid_argument("probe_network: alpha_probe must be > 0");
  if (options.bandwidth_probe.value() <= 0.0)
    throw std::invalid_argument("probe_network: bandwidth_probe must be > 0");
  tensor::Rng rng(options.seed);
  const auto jittered = [&](Seconds seconds) {
    if (options.jitter_frac <= 0.0) return seconds;
    return seconds * std::max(1.0 + options.jitter_frac * static_cast<double>(rng.gaussian()),
                              0.05);
  };

  const int p = cluster.world_size;
  NetworkEstimate estimate;

  // --- alpha: ring-reduce a tiny tensor, divide by (p-1) --------------------
  const Seconds tiny_time =
      jittered(comm::ring_allreduce_seconds(options.alpha_probe, p, cluster.network));
  estimate.alpha = tiny_time / static_cast<double>(p - 1);

  // --- bandwidth: iperf3-style pairwise transfers, keep the minimum ---------
  double min_bw = 0.0;  // bytes per second, converted on assignment below
  double max_bw = 0.0;
  bool first = true;
  for (int a = 0; a < p; ++a) {
    for (int b = a + 1; b < p; ++b) {
      const double transfer =
          jittered(comm::send_seconds(options.bandwidth_probe, cluster.network)).value();
      const double effective = transfer > cluster.network.alpha.value()
                                   ? options.bandwidth_probe.value() /
                                         (transfer - cluster.network.alpha.value())
                                   : options.bandwidth_probe.value() / transfer;
      if (first || effective < min_bw) min_bw = effective;
      if (first || effective > max_bw) max_bw = effective;
      first = false;
    }
  }
  estimate.bandwidth = BitsPerSecond::from_bytes_per_second(min_bw);
  estimate.min_pair = BitsPerSecond::from_bytes_per_second(min_bw);
  estimate.max_pair = BitsPerSecond::from_bytes_per_second(max_bw);
  return estimate;
}

}  // namespace gradcomp::sim
