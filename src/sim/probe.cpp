#include "sim/probe.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/rng.hpp"

namespace gradcomp::sim {

NetworkEstimate probe_network(const core::Cluster& cluster, const ProbeOptions& options) {
  if (cluster.world_size < 2)
    throw std::invalid_argument("probe_network: need at least two workers");
  if (options.jitter_frac < 0.0)
    throw std::invalid_argument("probe_network: jitter_frac must be >= 0");
  if (options.alpha_probe_bytes <= 0.0)
    throw std::invalid_argument("probe_network: alpha_probe_bytes must be > 0");
  if (options.bandwidth_probe_bytes <= 0.0)
    throw std::invalid_argument("probe_network: bandwidth_probe_bytes must be > 0");
  tensor::Rng rng(options.seed);
  const auto jittered = [&](double seconds) {
    if (options.jitter_frac <= 0.0) return seconds;
    return seconds * std::max(1.0 + options.jitter_frac * static_cast<double>(rng.gaussian()),
                              0.05);
  };

  const int p = cluster.world_size;
  NetworkEstimate estimate;

  // --- alpha: ring-reduce a tiny tensor, divide by (p-1) --------------------
  const double tiny_time =
      jittered(comm::ring_allreduce_seconds(options.alpha_probe_bytes, p, cluster.network));
  estimate.alpha_s = tiny_time / static_cast<double>(p - 1);

  // --- bandwidth: iperf3-style pairwise transfers, keep the minimum ---------
  double min_bw = 0.0;
  double max_bw = 0.0;
  bool first = true;
  for (int a = 0; a < p; ++a) {
    for (int b = a + 1; b < p; ++b) {
      const double transfer =
          jittered(comm::send_seconds(options.bandwidth_probe_bytes, cluster.network));
      const double effective = transfer > cluster.network.alpha_s
                                   ? options.bandwidth_probe_bytes /
                                         (transfer - cluster.network.alpha_s)
                                   : options.bandwidth_probe_bytes / transfer;
      if (first || effective < min_bw) min_bw = effective;
      if (first || effective > max_bw) max_bw = effective;
      first = false;
    }
  }
  estimate.bandwidth_bps = min_bw;
  estimate.min_pair_gbps = min_bw * 8.0 / 1e9;
  estimate.max_pair_gbps = max_bw * 8.0 / 1e9;
  return estimate;
}

}  // namespace gradcomp::sim
