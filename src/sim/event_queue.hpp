// Minimal discrete-event simulation engine.
//
// Events are (time, callback) pairs executed in time order; ties break by
// insertion order so runs are deterministic. The DDP simulator schedules
// layer-completion and collective-completion events on this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gradcomp::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` at absolute time `at_s` (seconds); `at_s` must not
  // precede the current simulation time.
  void schedule(double at_s, Callback fn);
  // Schedules `fn` at now() + delay_s.
  void schedule_after(double delay_s, Callback fn);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }

  // Executes events in time order until the queue drains. Returns the final
  // simulation time.
  double run();

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace gradcomp::sim
