// Minimal discrete-event simulation engine.
//
// Events are (time, callback) pairs executed in time order; ties break by
// insertion order so runs are deterministic. The DDP simulator schedules
// layer-completion and collective-completion events on this queue; the
// fabric packet engine schedules per-packet link events.
//
// All timestamps cross this boundary as core::units::Seconds — a raw double
// does not compile, closing the last raw-double hole in the timing spine
// (the negcompile suite pins this).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/units.hpp"

namespace gradcomp::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using Seconds = core::units::Seconds;

  // Schedules `fn` at absolute time `at`; `at` must not precede the current
  // simulation time.
  void schedule(Seconds at, Callback fn);
  // Schedules `fn` at now() + delay.
  void schedule_after(Seconds delay, Callback fn);

  [[nodiscard]] Seconds now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }

  // Executes events in time order until the queue drains. Returns the final
  // simulation time.
  [[nodiscard]] Seconds run();

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Seconds now_{};
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace gradcomp::sim
