// Discrete-event simulator of one data-parallel training iteration.
//
// This plays the role of the paper's AWS testbed (24x p3.8xlarge / 96
// V100s): it executes the *timeline* of an iteration — per-layer backward
// progress, DDP bucket launches on a separate communication stream,
// ring/tree/all-gather collectives, sequential or (deliberately contended)
// overlapped compression — against the calibrated device and network
// models. The analytical PerfModel (core/) is validated against this
// simulator exactly as the paper validates its model against the real
// cluster (Figure 8).
//
// Differences from the analytical model, mirroring real-cluster effects:
//   * the communication stream serializes bucket all-reduces and only
//     starts once the first bucket is ready (the model assumes perfect
//     packing);
//   * all-gathers suffer an incast penalty (Section 4.3 attributes the
//     model's 14.2% SignSGD error to exactly this);
//   * optional multiplicative jitter reproduces run-to-run variance.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/fault_plan.hpp"
#include "core/perf_model.hpp"
#include "core/units.hpp"
#include "fabric/collectives.hpp"
#include "tensor/rng.hpp"
#include "trace/timeline.hpp"

namespace gradcomp::sim {

using core::units::BitsPerSecond;
using core::units::Bytes;
using core::units::Seconds;

// Default for SimOptions::validate_timeline: on in Debug builds, off in
// Release hot paths (sweep drivers run thousands of iterations). Tests set
// the flag explicitly so the invariants gate every CI configuration.
#ifdef NDEBUG
inline constexpr bool kValidateTimelineDefault = false;
#else
inline constexpr bool kValidateTimelineDefault = true;
#endif

// How the simulator prices each collective.
//   kAnalytic — the closed-form alpha-beta formulas of comm/cost_model.hpp
//     (one flat link; contention only via the incast_penalty fudge).
//   kFabric — the event-driven per-link queueing network of src/fabric:
//     the collective's actual message schedule runs over a hierarchical
//     topology and contention (incast, oversubscription, multi-flow
//     sharing) emerges from packet FIFOs. incast_penalty is ignored in
//     this mode; the fault plan's bandwidth degradation applies uniformly
//     to every link, and the rejoin resync broadcast stays analytic.
enum class NetworkModel { kAnalytic, kFabric };

struct SimOptions {
  std::int64_t bucket_bytes = models::kDefaultBucketBytes;
  // Use NCCL-style double-tree instead of ring for all-reduce.
  bool use_tree_allreduce = false;
  // Run compression concurrently with the backward pass (the Section 3.1
  // experiment). Both streams slow down by `contention_factor` while they
  // share the GPU.
  bool overlap_compression = false;
  double contention_factor = 1.6;
  // All-gather bandwidth degradation (incast); 0 disables.
  double incast_penalty = 0.08;
  // Multiplicative gaussian jitter applied to every duration (0 = exact).
  double jitter_frac = 0.0;
  // Straggler model: each worker independently straggles with this
  // probability per iteration, stretching its compute by straggler_factor.
  // Synchronous training waits for the slowest worker, so the iteration
  // stalls whenever ANY of the p workers straggles — a probability that
  // grows with scale.
  double straggler_prob = 0.0;
  double straggler_factor = 2.0;
  std::uint64_t seed = 1;
  // Deterministic fault schedule (core/fault_plan.hpp): heavy-tailed and
  // rack-correlated stragglers, transient link degradation, and permanent
  // rank failure. The simulator advances one plan iteration per simulated
  // iteration and records active fault events as spans on the "fault"
  // stream. An empty plan (the default) injects nothing.
  core::FaultPlan fault_plan;
  // Wall-clock cost charged to the iteration in which a rank failure is
  // detected: the survivors' timeout + group-shrink consensus, our stand-in
  // for NCCL communicator teardown/re-init.
  Seconds recovery_detect{0.05};
  // Group-rebuild consensus stall charged per rejoining rank, on top of the
  // modeled params+optimizer resync broadcast (~2x model bytes through the
  // current link state). Together they make the cost of churn visible as
  // "rejoin" spans in every benchmark timeline.
  Seconds rejoin_rebuild{0.02};
  // Collective pricing backend (see NetworkModel above).
  NetworkModel network_model = NetworkModel::kAnalytic;
  // Fabric-mode topology. world_size is overridden each iteration with the
  // surviving rank count; zero nic_bandwidth inherits the cluster network's
  // bandwidth and negative nic_latency inherits alpha/2 (per-direction, so
  // one rank-to-rank hop costs exactly alpha — the analytic convention).
  fabric::TopologySpec fabric_topology;
  // Packet granularity of the fabric's store-and-forward engine.
  Bytes fabric_packet_bytes{64.0 * 1024.0};
  // All-gather schedule in fabric mode. kDirect reproduces the incast the
  // analytic model can only fudge with incast_penalty.
  fabric::GatherPattern fabric_gather = fabric::GatherPattern::kDirect;
  // Fabric-mode trace detail: false records one aggregate "fabric" span per
  // collective; true records every rank-to-rank flow (large timelines).
  bool fabric_flow_spans = false;
  // Debug gate: run trace::validate on every produced timeline (span order,
  // intra-lane overlap, busy-time conservation against the SimResult
  // accounting, fault spans inside the iteration window) and throw
  // std::logic_error on any violation.
  bool validate_timeline = kValidateTimelineDefault;
};

struct SimResult {
  Seconds iteration_time;
  Seconds compute;
  Seconds encode;
  Seconds decode;
  Seconds comm;          // busy time on the comm stream
  Seconds exposed_comm;  // iteration time beyond compute+encode+decode
  trace::Timeline timeline;
};

class ClusterSim {
 public:
  ClusterSim(core::Cluster cluster, SimOptions options);

  // One optimized synchronous-SGD iteration (bucketed, overlapped).
  [[nodiscard]] SimResult run_syncsgd(const core::Workload& workload);

  // One iteration with a compression method. Sequential encode -> collective
  // -> decode by default; options_.overlap_compression switches to the
  // contended-overlap schedule of Figure 3.
  [[nodiscard]] SimResult run_compressed(const compress::CompressorConfig& config,
                                         const core::Workload& workload);

  [[nodiscard]] const core::Cluster& cluster() const noexcept { return cluster_; }
  [[nodiscard]] const SimOptions& options() const noexcept { return options_; }

  // Simulated iterations consumed so far (advances the fault plan).
  [[nodiscard]] int iteration() const noexcept { return iteration_; }

 private:
  // Snapshot of the fault plan's effect on the iteration about to run.
  struct IterationFaults {
    int index = -1;                 // plan iteration this snapshot describes
    double stretch = 1.0;           // max compute stretch over surviving ranks
    double bandwidth_factor = 1.0;  // link degradation multiplier
    int world = 1;                  // surviving rank count
    int failed_rank = -1;           // rank failing THIS iteration, or -1
    Seconds recovery;               // detect + shrink cost if failed_rank >= 0
    std::vector<int> rejoiners;     // ranks rejoining at THIS step boundary
    Seconds resync_per_rank;        // rebuild + state broadcast per rejoiner
  };
  // Advances iteration_ and snapshots the plan state into current_; the
  // workload sizes the rejoin resync broadcast (params + optimizer state).
  void begin_iteration(const core::Workload& workload);
  // Appends spans for current_'s rejoin resyncs, active fault events, and
  // the failure recovery cost.
  void record_fault_spans(SimResult& result) const;
  // Fault spans record_fault_spans() will/did emit for current_.
  [[nodiscard]] int expected_fault_spans() const;
  // trace::validate the finished result (options_.validate_timeline gate);
  // throws std::logic_error naming `what` on any violation.
  void validate_result(const SimResult& result, const char* what) const;

  // Applies jitter (if configured) to a nominal duration.
  [[nodiscard]] Seconds jittered(Seconds nominal);
  // Compute stretch for this iteration: the legacy Bernoulli knob combined
  // with the fault plan's per-worker draws (synchronous training waits for
  // the slowest surviving worker).
  [[nodiscard]] double straggler_stretch();
  // One priced collective: the nominal duration plus, in fabric mode, the
  // emergent per-flow schedule backing it (empty under kAnalytic).
  struct CollectiveCost {
    Seconds elapsed;
    std::vector<fabric::Flow> flows;
    Seconds queue_delay;
    int max_queue_depth = 0;
  };
  // Collective cost for one all-reduce of `bytes` under the cluster network
  // at the current iteration's surviving world size and link state.
  [[nodiscard]] CollectiveCost allreduce_cost(Bytes bytes);
  [[nodiscard]] CollectiveCost allgather_cost(Bytes bytes_per_rank);
  [[nodiscard]] comm::Network effective_network() const;
  // Fabric topology for a surviving world size (built on demand, cached);
  // resolves the spec's inherit-from-cluster sentinels.
  [[nodiscard]] const fabric::Topology& topology_for(int world);
  [[nodiscard]] fabric::FabricOptions fabric_options() const;
  // Records `cost`'s flow schedule on the "fabric" annotation lane, shifted
  // to `offset` and scaled by `scale` (the jitter stretch applied to the
  // collective's span on the comm lane). No-op when there are no flows.
  void record_fabric(SimResult& result, const CollectiveCost& cost, Seconds offset, double scale,
                     const std::string& label);

  core::Cluster cluster_;
  SimOptions options_;
  tensor::Rng rng_;
  int iteration_ = 0;
  IterationFaults current_;
  std::map<int, fabric::Topology> topologies_;  // keyed by surviving world size
  int fabric_span_count_ = 0;                   // "fabric" spans this iteration
};

}  // namespace gradcomp::sim
