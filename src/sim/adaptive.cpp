#include "sim/adaptive.hpp"

#include <stdexcept>

namespace gradcomp::sim {

AdaptiveResult run_adaptive(ClusterSim& sim, const core::Workload& workload,
                            const AdaptiveOptions& options) {
  if (options.iterations < 1)
    throw std::invalid_argument("run_adaptive: iterations must be >= 1");

  adapt::Controller controller(workload, sim.cluster(), options.controller);
  const core::PerfModel model;
  const auto& plan = sim.options().fault_plan;

  AdaptiveResult out;
  out.iteration_s.reserve(static_cast<std::size_t>(options.iterations));
  double clock = 0.0;
  double window_start = 0.0;
  std::string running = controller.current().label;

  for (int it = 0; it < options.iterations; ++it) {
    const compress::CompressorConfig cfg = controller.current().config;
    const SimResult r = sim.run_compressed(cfg, workload);
    out.iteration_s.push_back(r.iteration_s);
    out.config_per_iteration.push_back(cfg);
    for (const auto& s : r.timeline.spans_on("fault"))
      out.timeline.add("fault", s.label, clock + s.start_s, clock + s.end_s);
    clock += r.iteration_s;

    // Feed the modeled timings back: the simulator plays the role of the
    // instrumented cluster, the controller only ever sees measurements.
    adapt::Observation o;
    o.wire_bytes = model.wire_bytes(cfg, workload.model);
    o.collective_s = r.comm_s;
    o.backward_s = r.compute_s;
    o.nominal_backward_s = model.compressed(cfg, workload, sim.cluster()).compute_s;
    o.shape = adapt::collective_shape(cfg, workload.model, sim.options().bucket_bytes);
    int world = sim.cluster().world_size;
    if (!plan.empty()) {
      int alive = 0;
      for (int rank = 0; rank < sim.cluster().world_size; ++rank)
        if (!plan.rank_failed_by(rank, it)) ++alive;
      world = alive > 0 ? alive : 1;
    }
    o.world_size = world;

    if (const auto decision = controller.observe(o)) {
      out.timeline.add("adapt", running + ": " + decision->reason, window_start, clock);
      window_start = clock;
      running = controller.current().label;
      out.decisions.push_back(*decision);
    }
  }
  if (clock > window_start)
    out.timeline.add("adapt", running + " (active)", window_start, clock);

  out.total_s = clock;
  out.switches = controller.switches();
  return out;
}

}  // namespace gradcomp::sim
