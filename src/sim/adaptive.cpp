#include "sim/adaptive.hpp"

#include <stdexcept>

#include "trace/validate.hpp"

namespace gradcomp::sim {

AdaptiveResult run_adaptive(ClusterSim& sim, const core::Workload& workload,
                            const AdaptiveOptions& options) {
  if (options.iterations < 1)
    throw std::invalid_argument("run_adaptive: iterations must be >= 1");

  adapt::Controller controller(workload, sim.cluster(), options.controller);
  const core::PerfModel model;
  const auto& plan = sim.options().fault_plan;

  AdaptiveResult out;
  out.iteration_times.reserve(static_cast<std::size_t>(options.iterations));
  Seconds clock;
  Seconds window_start;
  std::string running = controller.current().label;

  for (int it = 0; it < options.iterations; ++it) {
    const compress::CompressorConfig cfg = controller.current().config;
    const SimResult r = sim.run_compressed(cfg, workload);
    out.iteration_times.push_back(r.iteration_time);
    out.config_per_iteration.push_back(cfg);
    for (const auto& s : r.timeline.spans_on("fault"))
      out.timeline.add("fault", s.label, clock + s.start, clock + s.end);
    clock += r.iteration_time;

    // Feed the modeled timings back: the simulator plays the role of the
    // instrumented cluster, the controller only ever sees measurements.
    adapt::Observation o;
    o.wire_bytes = model.wire_bytes(cfg, workload.model);
    o.collective = r.comm;
    o.backward = r.compute;
    o.nominal_backward = model.compressed(cfg, workload, sim.cluster()).compute;
    o.shape = adapt::collective_shape(cfg, workload.model, sim.options().bucket_bytes);
    int world = sim.cluster().world_size;
    if (!plan.empty()) {
      int alive = 0;
      for (int rank = 0; rank < sim.cluster().world_size; ++rank)
        if (!plan.rank_failed_by(rank, it)) ++alive;
      world = alive > 0 ? alive : 1;
    }
    o.world_size = world;

    if (const auto decision = controller.observe(o)) {
      out.timeline.add("adapt", running + ": " + decision->reason, window_start, clock);
      window_start = clock;
      running = controller.current().label;
      out.decisions.push_back(*decision);
    }
  }
  if (clock > window_start)
    out.timeline.add("adapt", running + " (active)", window_start, clock);

  out.total = clock;
  out.switches = controller.switches();

  // Same debug gate as the per-iteration simulator: the cumulative timeline
  // must tile its decision windows gap-free over [0, total] and keep every
  // re-based fault span inside the run.
  if (sim.options().validate_timeline) {
    trace::ValidateOptions vo;
    vo.annotation_lanes = {"fault", "adapt"};
    vo.horizon = out.total;
    vo.gap_free_lanes = {"adapt"};
    vo.lane_windows = {{"fault", {{Seconds{}, out.total}}}};
    trace::validate_or_throw(out.timeline, vo, "run_adaptive");
  }
  return out;
}

}  // namespace gradcomp::sim
