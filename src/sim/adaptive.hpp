// Closed-loop adaptive compression on the cluster simulator.
//
// Runs ClusterSim iterations under the scheme the adapt::Controller holds
// active, feeding each iteration's MODELED timings back as observations —
// so a FaultPlan link-degradation window visibly drags the effective-
// bandwidth estimate down, the next advisor run flips the verdict, and the
// simulated job switches to (and later back from) a compression scheme.
//
// The returned timeline is cumulative across iterations and carries two
// extra streams:
//   * "adapt"  — one span per decision window, labelled with the active
//                scheme and the controller's stated reason;
//   * "fault"  — the per-iteration fault spans re-based to cumulative time.
#pragma once

#include <vector>

#include "adapt/controller.hpp"
#include "sim/ddp_sim.hpp"

namespace gradcomp::sim {

struct AdaptiveOptions {
  int iterations = 100;
  adapt::ControllerOptions controller;
};

struct AdaptiveResult {
  Seconds total;
  std::vector<Seconds> iteration_times;  // per-iteration durations
  // Scheme that ran each iteration (wire form via compress::config_to_string).
  std::vector<compress::CompressorConfig> config_per_iteration;
  std::vector<adapt::Decision> decisions;
  trace::Timeline timeline;
  int switches = 0;
};

// Drives `sim` for options.iterations, one ClusterSim iteration per plan
// iteration. The controller's prior cluster is sim.cluster().
[[nodiscard]] AdaptiveResult run_adaptive(ClusterSim& sim, const core::Workload& workload,
                                          const AdaptiveOptions& options);

}  // namespace gradcomp::sim
