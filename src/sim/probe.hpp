// Network probing, replicating the paper's measurement methodology
// (Section 4.3):
//
//   * "Before each run we calculate available bandwidth between each pair of
//      instances using iperf3 and take the minimum of these values as BW."
//   * "For calculating alpha we perform ring-reduce on a small tensor and
//      divide the obtained value by (p-1)."
//
// The probe runs those procedures against the simulated cluster (with its
// jitter) and recovers the effective alpha and bandwidth — the calibration
// inputs the performance model consumes. Tests assert the estimates match
// the configured network.
#pragma once

#include "core/perf_model.hpp"
#include "sim/ddp_sim.hpp"

namespace gradcomp::sim {

struct NetworkEstimate {
  Seconds alpha;             // per-hop latency estimate
  BitsPerSecond bandwidth;   // effective bandwidth (min over pairs)
  BitsPerSecond min_pair;    // worst pairwise iperf-style measurement
  BitsPerSecond max_pair;    // best pairwise measurement
};

struct ProbeOptions {
  // Small tensor for the alpha measurement — small enough that the
  // bandwidth term is negligible, as the paper's "vector of size equivalent
  // to number of machines".
  Bytes alpha_probe{4.0 * 96};
  // Large transfer for the pairwise bandwidth measurement.
  Bytes bandwidth_probe{64.0 * 1024 * 1024};
  // Multiplicative jitter on each measurement (run-to-run variance).
  double jitter_frac = 0.02;
  std::uint64_t seed = 7;
};

// Probes the cluster's network the way the paper probes its testbed.
[[nodiscard]] NetworkEstimate probe_network(const core::Cluster& cluster,
                                            const ProbeOptions& options = {});

}  // namespace gradcomp::sim
