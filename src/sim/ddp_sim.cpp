#include "sim/ddp_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/event_queue.hpp"
#include "trace/validate.hpp"

namespace gradcomp::sim {

namespace {

// One EncodeCostModel per process: construction solves the calibration
// system; the result is immutable.
const core::EncodeCostModel& encode_cost_model() {
  static const core::EncodeCostModel model;
  return model;
}

}  // namespace

ClusterSim::ClusterSim(core::Cluster cluster, SimOptions options)
    : cluster_(std::move(cluster)), options_(std::move(options)), rng_(options_.seed) {
  if (cluster_.world_size < 1)
    throw std::invalid_argument("ClusterSim: world size must be >= 1");
  if (options_.contention_factor < 1.0)
    throw std::invalid_argument("ClusterSim: contention_factor must be >= 1");
  if (options_.jitter_frac < 0.0)
    throw std::invalid_argument("ClusterSim: jitter_frac must be >= 0, got " +
                                std::to_string(options_.jitter_frac));
  if (options_.straggler_prob < 0.0 || options_.straggler_prob > 1.0)
    throw std::invalid_argument("ClusterSim: straggler_prob must be in [0, 1], got " +
                                std::to_string(options_.straggler_prob));
  if (options_.straggler_factor < 1.0)
    throw std::invalid_argument(
        "ClusterSim: straggler_factor must be >= 1 (a stretch multiplier), got " +
        std::to_string(options_.straggler_factor));
  if (options_.incast_penalty < 0.0)
    throw std::invalid_argument("ClusterSim: incast_penalty must be >= 0, got " +
                                std::to_string(options_.incast_penalty));
  if (options_.recovery_detect < Seconds{})
    throw std::invalid_argument("ClusterSim: recovery_detect must be >= 0");
  if (options_.rejoin_rebuild < Seconds{})
    throw std::invalid_argument("ClusterSim: rejoin_rebuild must be >= 0");
  if (options_.network_model == NetworkModel::kFabric &&
      options_.fabric_packet_bytes.value() <= 0)
    throw std::invalid_argument("ClusterSim: fabric_packet_bytes must be > 0");
  if (!options_.fault_plan.empty() &&
      options_.fault_plan.world_size() != cluster_.world_size)
    throw std::invalid_argument(
        "ClusterSim: fault_plan world size (" +
        std::to_string(options_.fault_plan.world_size()) + ") != cluster world size (" +
        std::to_string(cluster_.world_size) + ")");
  current_.world = cluster_.world_size;
}

void ClusterSim::begin_iteration(const core::Workload& workload) {
  const int it = iteration_++;
  fabric_span_count_ = 0;
  current_ = IterationFaults{};
  current_.index = it;
  current_.world = cluster_.world_size;
  const auto& plan = options_.fault_plan;
  if (plan.empty()) return;
  current_.stretch = plan.max_stretch(it);
  current_.bandwidth_factor = plan.bandwidth_factor(it);
  int alive = 0;
  for (int r = 0; r < cluster_.world_size; ++r)
    if (!plan.rank_failed_by(r, it)) ++alive;
  current_.world = std::max(1, alive);
  current_.failed_rank = plan.failed_rank_at(it);
  if (current_.failed_rank >= 0) current_.recovery = options_.recovery_detect;
  current_.rejoiners = plan.rejoining_ranks_at(it);
  if (!current_.rejoiners.empty()) {
    // Each joiner pays the group-rebuild consensus plus the in-band resync
    // broadcast: params + optimizer velocity in fp32 (~2x model bytes)
    // through the re-expanded group over the current link state.
    const Bytes resync_bytes{2.0 * static_cast<double>(workload.model.total_params()) * 4.0};
    current_.resync_per_rank =
        options_.rejoin_rebuild +
        comm::broadcast_seconds(resync_bytes, current_.world, effective_network());
  }
}

void ClusterSim::record_fault_spans(SimResult& result) const {
  const auto& plan = options_.fault_plan;
  if (plan.empty() || current_.index < 0) return;
  // Rejoin resyncs stall the whole group at the step boundary: one span per
  // joiner, charged on top of the iteration's useful work.
  for (const int rank : current_.rejoiners) {
    const Seconds start = result.iteration_time;
    result.iteration_time += current_.resync_per_rank;
    result.timeline.add("rejoin",
                        "rank " + std::to_string(rank) + " rejoin: rebuild + resync", start,
                        result.iteration_time);
  }
  if (current_.recovery > Seconds{}) {
    // The failure iteration pays detection (survivor timeout) plus the
    // group-shrink consensus before its result counts.
    const Seconds start = result.iteration_time;
    result.iteration_time += current_.recovery;
    result.timeline.add("fault",
                        "rank " + std::to_string(current_.failed_rank) +
                            " failure: detect + shrink",
                        start, result.iteration_time);
  }
  for (const auto& ev : plan.events_at(current_.index)) {
    // A rank failure spans its whole downtime; record it once, at detection.
    // Later iterations already show its effect through the shrunken world
    // size. Rejoins get their own costed lane above, not a fault marker.
    if (ev.kind == core::FaultKind::kRankFailure && ev.iteration != current_.index) continue;
    if (ev.kind == core::FaultKind::kRankRejoin) continue;
    std::string label = core::fault_kind_name(ev.kind);
    if (ev.rank >= 0) label += " rank " + std::to_string(ev.rank);
    char factor[32];
    std::snprintf(factor, sizeof(factor), " x%.2f", ev.factor);
    label += factor;
    result.timeline.add("fault", label, Seconds{}, result.iteration_time);
  }
}

int ClusterSim::expected_fault_spans() const {
  const auto& plan = options_.fault_plan;
  if (plan.empty() || current_.index < 0) return 0;
  int n = current_.recovery > Seconds{} ? 1 : 0;
  for (const auto& ev : plan.events_at(current_.index)) {
    // Mirrors record_fault_spans: a rank failure is only recorded at its
    // detection iteration, and rejoins live on their own lane.
    if (ev.kind == core::FaultKind::kRankFailure && ev.iteration != current_.index) continue;
    if (ev.kind == core::FaultKind::kRankRejoin) continue;
    ++n;
  }
  return n;
}

void ClusterSim::validate_result(const SimResult& result, const char* what) const {
  if (!options_.validate_timeline) return;
  trace::ValidateOptions vo;
  vo.annotation_lanes = {"fault", "rejoin", "fabric"};
  vo.horizon = result.iteration_time;
  vo.expected_busy = {{"compute", result.compute},
                      {"comm", result.comm},
                      {"encode", result.encode},
                      {"decode", result.decode}};
  vo.lane_windows = {{"fault", {{Seconds{}, result.iteration_time}}},
                     {"rejoin", {{Seconds{}, result.iteration_time}}},
                     {"fabric", {{Seconds{}, result.iteration_time}}}};
  vo.expected_span_count = {{"fault", expected_fault_spans()},
                            {"rejoin", static_cast<int>(current_.rejoiners.size())},
                            {"fabric", fabric_span_count_}};
  trace::validate_or_throw(result.timeline, vo, std::string("ClusterSim::") + what);
}

Seconds ClusterSim::jittered(Seconds nominal) {
  if (options_.jitter_frac <= 0.0) return nominal;
  const double noise = 1.0 + options_.jitter_frac * static_cast<double>(rng_.gaussian());
  return nominal * std::max(noise, 0.05);
}

double ClusterSim::straggler_stretch() {
  // Synchronous training waits for the slowest worker, so the legacy
  // Bernoulli knob and the fault plan's per-worker draws combine via max.
  double stretch = current_.stretch;
  if (options_.straggler_prob > 0.0) {
    // P(at least one of p workers straggles) = 1 - (1-q)^p.
    const double p_any = 1.0 - std::pow(1.0 - options_.straggler_prob,
                                        static_cast<double>(current_.world));
    if (rng_.next_double() < p_any) stretch = std::max(stretch, options_.straggler_factor);
  }
  return stretch;
}

comm::Network ClusterSim::effective_network() const {
  comm::Network net = cluster_.network;
  net.incast_penalty = options_.incast_penalty;
  net.bandwidth *= current_.bandwidth_factor;
  return net;
}

const fabric::Topology& ClusterSim::topology_for(int world) {
  const auto it = topologies_.find(world);
  if (it != topologies_.end()) return it->second;
  fabric::TopologySpec spec = options_.fabric_topology;
  spec.world_size = world;
  if (spec.nic_bandwidth.value() <= 0) spec.nic_bandwidth = cluster_.network.bandwidth;
  // Per-direction latency: alpha/2 each way makes one rank-to-rank message
  // cost exactly the analytic model's single alpha.
  if (spec.nic_latency < Seconds{}) spec.nic_latency = cluster_.network.alpha / 2.0;
  return topologies_.try_emplace(world, spec).first->second;
}

fabric::FabricOptions ClusterSim::fabric_options() const {
  fabric::FabricOptions fo;
  fo.packet_bytes = options_.fabric_packet_bytes;
  // The fault plan's link degradation hits every fabric link uniformly, the
  // event-queue analogue of effective_network()'s bandwidth scaling.
  fo.bandwidth_factor = current_.bandwidth_factor;
  return fo;
}

ClusterSim::CollectiveCost ClusterSim::allreduce_cost(Bytes bytes) {
  if (options_.network_model == NetworkModel::kAnalytic) {
    const comm::Network net = effective_network();
    return CollectiveCost{options_.use_tree_allreduce
                              ? comm::tree_allreduce_seconds(bytes, current_.world, net)
                              : comm::ring_allreduce_seconds(bytes, current_.world, net),
                          {},
                          Seconds{},
                          0};
  }
  const fabric::Topology& topo = topology_for(current_.world);
  fabric::CollectiveResult r = options_.use_tree_allreduce
                                   ? fabric::tree_allreduce(topo, fabric_options(), bytes)
                                   : fabric::ring_allreduce(topo, fabric_options(), bytes);
  return CollectiveCost{r.elapsed, std::move(r.flows), r.queue_delay, r.max_queue_depth};
}

ClusterSim::CollectiveCost ClusterSim::allgather_cost(Bytes bytes_per_rank) {
  if (options_.network_model == NetworkModel::kAnalytic)
    return CollectiveCost{
        comm::allgather_seconds(bytes_per_rank, current_.world, effective_network()),
        {},
        Seconds{},
        0};
  fabric::CollectiveResult r = fabric::allgather(topology_for(current_.world), fabric_options(),
                                                 bytes_per_rank, options_.fabric_gather);
  return CollectiveCost{r.elapsed, std::move(r.flows), r.queue_delay, r.max_queue_depth};
}

void ClusterSim::record_fabric(SimResult& result, const CollectiveCost& cost, Seconds offset,
                               double scale, const std::string& label) {
  if (cost.flows.empty()) return;
  if (!options_.fabric_flow_spans) {
    char stats[96];
    std::snprintf(stats, sizeof(stats), " [%zu flows, queue %.1fus, depth %d]",
                  cost.flows.size(), cost.queue_delay.us(), cost.max_queue_depth);
    result.timeline.add("fabric", label + stats, offset, offset + cost.elapsed * scale);
    ++fabric_span_count_;
    return;
  }
  for (const auto& flow : cost.flows) {
    result.timeline.add("fabric",
                        flow.label + " r" + std::to_string(flow.src_rank) + "->r" +
                            std::to_string(flow.dst_rank),
                        offset + flow.start * scale, offset + flow.end * scale);
    ++fabric_span_count_;
  }
}

SimResult ClusterSim::run_syncsgd(const core::Workload& workload) {
  begin_iteration(workload);
  SimResult result;
  const int p = current_.world;
  const Seconds t_comp = cluster_.device.scaled(workload.model.backward_seconds(workload.batch_size));

  if (p == 1) {
    const Seconds dur = jittered(t_comp) * straggler_stretch();
    result.timeline.add("compute", "backward", Seconds{}, dur);
    result.compute = dur;
    result.iteration_time = dur;
    record_fault_spans(result);
    validate_result(result, "run_syncsgd");
    return result;
  }
  const double stretch = straggler_stretch();

  const auto buckets = models::make_buckets(workload.model, options_.bucket_bytes);
  const auto total_layers = static_cast<double>(workload.model.layers.size());

  // Price every bucket's all-reduce once up front (in fabric mode each is a
  // full event-driven run whose flow schedule is replayed onto the trace).
  std::vector<CollectiveCost> bucket_costs;
  bucket_costs.reserve(buckets.size());
  for (const auto& bucket : buckets)
    bucket_costs.push_back(allreduce_cost(Bytes{static_cast<double>(bucket.bytes)}));

  // Matching the analytical model's interpretation: the gamma slowdown only
  // applies to the fraction of the backward pass that actually shares the
  // GPU with in-flight communication.
  Seconds overlappable_comm;
  for (std::size_t i = 0; i + 1 < buckets.size(); ++i)
    overlappable_comm += bucket_costs[i].elapsed;
  const double gamma =
      1.0 + (cluster_.device.gamma - 1.0) * std::min(1.0, overlappable_comm / t_comp);

  // The backward pass produces each bucket's gradients after a compute slice
  // proportional to the bucket's LAYER count, not its byte count: deep-layer
  // parameters (which fill the first buckets) are parameter-dense but
  // compute-light, which is exactly why DDP's first all-reduce launches
  // early in the real trace (Figure 2).
  EventQueue queue;
  double compute_t = 0.0;
  double comm_free = 0.0;
  double comm_busy = 0.0;
  double last_comm_end = 0.0;

  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double share = static_cast<double>(buckets[i].layer_indices.size()) / total_layers;
    const double slice = jittered(Seconds{gamma * t_comp.value() * share}).value() * stretch;
    result.timeline.add("compute", "backward bucket " + std::to_string(i), Seconds{compute_t},
                        Seconds{compute_t + slice});
    compute_t += slice;

    const double ready = compute_t;
    const double duration = jittered(bucket_costs[i].elapsed).value();
    queue.schedule(Seconds{ready}, [&, i, duration] {
      const double start = std::max(queue.now().value(), comm_free);
      const double end = start + duration;
      comm_free = end;
      comm_busy += duration;
      last_comm_end = end;
      result.timeline.add("comm", "allreduce bucket " + std::to_string(i), Seconds{start},
                          Seconds{end});
      const double scale = bucket_costs[i].elapsed > Seconds{}
                               ? duration / bucket_costs[i].elapsed.value()
                               : 1.0;
      record_fabric(result, bucket_costs[i], Seconds{start}, scale,
                    "allreduce bucket " + std::to_string(i));
    });
  }
  // The makespan is tracked via last_comm_end; the drain time itself (== the
  // final bucket's comm end) is not needed separately.
  static_cast<void>(queue.run());

  result.compute = Seconds{compute_t};
  result.comm = Seconds{comm_busy};
  result.iteration_time = Seconds{std::max(compute_t, last_comm_end)};
  result.exposed_comm = result.iteration_time - result.compute;
  record_fault_spans(result);
  validate_result(result, "run_syncsgd");
  return result;
}

SimResult ClusterSim::run_compressed(const compress::CompressorConfig& config,
                                     const core::Workload& workload) {
  if (config.method == compress::Method::kSyncSgd) return run_syncsgd(workload);

  // FP16 keeps the DDP bucketed-overlap structure with halved payloads.
  if (config.method == compress::Method::kFp16) {
    core::Workload halved = workload;
    // Halve wire bytes by doubling bucket capacity then halving each
    // all-reduce's bytes: simplest is to scale the network instead.
    ClusterSim inner(cluster_, options_);
    inner.cluster_.network.bandwidth *= 2.0;  // half the bytes == double BW
    inner.rng_ = rng_;
    inner.iteration_ = iteration_;  // keep the fault plan position in sync
    SimResult result = inner.run_syncsgd(halved);
    rng_ = inner.rng_;
    iteration_ = inner.iteration_;
    current_ = inner.current_;
    fabric_span_count_ = inner.fabric_span_count_;  // inner comm spans carry over
    const auto encdec =
        encode_cost_model().estimate(config, workload.model, cluster_.device,
                                     cluster_.world_size);
    const Seconds enc = jittered(encdec.encode);
    const Seconds dec = jittered(encdec.decode);
    result.timeline.add("encode", "fp16 convert", result.compute, result.compute + enc);
    result.encode = enc;
    result.decode = dec;
    // The decode slot starts once both the overlapped comm and the encode
    // have finished. (It was once missing from the timeline entirely —
    // decode seconds were charged to the iteration but appeared on no lane,
    // exactly the accounting drift trace::validate exists to catch.)
    const Seconds decode_start = std::max(result.iteration_time, result.compute + enc);
    result.timeline.add("decode", "fp16 convert back", decode_start, decode_start + dec);
    result.iteration_time = decode_start + dec;
    validate_result(result, "run_compressed(fp16)");
    return result;
  }

  begin_iteration(workload);
  SimResult result;
  const int p = current_.world;
  const Seconds t_comp = cluster_.device.scaled(workload.model.backward_seconds(workload.batch_size));
  const auto encdec =
      encode_cost_model().estimate(config, workload.model, cluster_.device, p);

  Seconds t;
  const double stretch = straggler_stretch();
  const Seconds backward = jittered(t_comp) * stretch;
  const Seconds encode = jittered(encdec.encode) * stretch;

  if (options_.overlap_compression) {
    // Section 3.1 schedule: compression shares the GPU with the backward
    // pass; both slow down by the contention factor while co-resident.
    const double c = options_.contention_factor;
    result.timeline.add("compute", "backward (contended)", Seconds{}, backward * c);
    result.timeline.add("encode", "encode (contended)", Seconds{}, encode * c);
    t = std::max(backward * c, encode * c);
    result.compute = backward * c;
    result.encode = encode * c;
  } else {
    result.timeline.add("compute", "backward", Seconds{}, backward);
    result.timeline.add("encode", "encode", backward, backward + encode);
    t = backward + encode;
    result.compute = backward;
    result.encode = encode;
  }

  // Collectives, serialized on the comm stream.
  std::vector<std::pair<std::string, CollectiveCost>> collectives;
  switch (config.method) {
    case compress::Method::kPowerSgd: {
      const auto bytes = core::PerfModel::low_rank_bytes(workload.model, config.rank);
      collectives.emplace_back("allreduce P", allreduce_cost(bytes.p_bytes));
      collectives.emplace_back("allreduce Q", allreduce_cost(bytes.q_bytes));
      if (bytes.dense_bytes.value() > 0)
        collectives.emplace_back("allreduce 1-D layers", allreduce_cost(bytes.dense_bytes));
      break;
    }
    case compress::Method::kRandomK: {
      const Bytes values_bytes{config.fraction *
                               static_cast<double>(workload.model.total_params()) * 4.0};
      collectives.emplace_back("allreduce values", allreduce_cost(values_bytes));
      break;
    }
    case compress::Method::kTopK:
    case compress::Method::kDgc: {
      const Bytes half{config.fraction * static_cast<double>(workload.model.total_params()) *
                       4.0};
      collectives.emplace_back("allgather values", allgather_cost(half));
      collectives.emplace_back("allgather indices", allgather_cost(half));
      break;
    }
    case compress::Method::kSignSgd:
    case compress::Method::kOneBit: {
      const Bytes bytes{static_cast<double>(workload.model.total_params()) / 8.0};
      collectives.emplace_back("allgather signs", allgather_cost(bytes));
      break;
    }
    case compress::Method::kQsgd:
    case compress::Method::kNatural: {
      collectives.emplace_back(
          "allgather codes",
          allgather_cost(Bytes{static_cast<double>(workload.model.total_params())}));
      break;
    }
    case compress::Method::kTernGrad: {
      collectives.emplace_back(
          "allgather codes",
          allgather_cost(Bytes{static_cast<double>(workload.model.total_params()) / 4.0}));
      break;
    }
    case compress::Method::kAtomo: {
      const auto bytes = core::PerfModel::low_rank_bytes(workload.model, config.rank);
      collectives.emplace_back("allgather factors",
                               allgather_cost(bytes.p_bytes + bytes.q_bytes));
      if (bytes.dense_bytes.value() > 0)
        collectives.emplace_back("allreduce 1-D layers", allreduce_cost(bytes.dense_bytes));
      break;
    }
    case compress::Method::kSyncSgd:
    case compress::Method::kFp16:
      break;  // handled above
  }
  for (const auto& [label, cost] : collectives) {
    const Seconds dur = jittered(cost.elapsed);
    result.timeline.add("comm", label, t, t + dur);
    const double scale = cost.elapsed > Seconds{} ? dur / cost.elapsed : 1.0;
    record_fabric(result, cost, t, scale, label);
    t += dur;
    result.comm += dur;
  }

  const Seconds decode = jittered(encdec.decode) * stretch;
  result.timeline.add("decode", "decode", t, t + decode);
  t += decode;
  result.decode = decode;

  result.iteration_time = t;
  result.exposed_comm = result.comm;
  record_fault_spans(result);
  validate_result(result, "run_compressed");
  return result;
}

}  // namespace gradcomp::sim
