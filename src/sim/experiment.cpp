#include "sim/experiment.hpp"

#include <stdexcept>

#include "core/parallel.hpp"

namespace gradcomp::sim {

Measurement measure(const core::Cluster& cluster, const SimOptions& options,
                    const compress::CompressorConfig& config, const core::Workload& workload,
                    const MeasurementProtocol& protocol) {
  if (protocol.iterations <= protocol.warmup)
    throw std::invalid_argument("measure: iterations must exceed warmup");

  ClusterSim sim(cluster, options);
  stats::Summary total(static_cast<std::size_t>(protocol.warmup));
  stats::Summary encode(static_cast<std::size_t>(protocol.warmup));
  stats::Summary decode(static_cast<std::size_t>(protocol.warmup));
  stats::Summary comm(static_cast<std::size_t>(protocol.warmup));
  for (int i = 0; i < protocol.iterations; ++i) {
    const SimResult r = sim.run_compressed(config, workload);
    total.add(r.iteration_time.value());
    encode.add(r.encode.value());
    decode.add(r.decode.value());
    comm.add(r.comm.value());
  }
  return Measurement{Seconds{total.mean()}, Seconds{total.stddev()}, Seconds{encode.mean()},
                     Seconds{decode.mean()}, Seconds{comm.mean()}};
}

std::vector<ScalingPoint> weak_scaling(core::Cluster cluster, const SimOptions& options,
                                       const compress::CompressorConfig& config,
                                       const core::Workload& workload,
                                       const std::vector<int>& worker_counts,
                                       const MeasurementProtocol& protocol) {
  const auto npoints = static_cast<std::int64_t>(worker_counts.size());
  std::vector<ScalingPoint> points(worker_counts.size());
  const compress::CompressorConfig baseline{};  // syncSGD

  // Each (worker count, config) measurement owns a freshly seeded ClusterSim,
  // so the points are independent: dispatching them onto the pool yields
  // bit-exact agreement with the serial order at any --jobs value. The task
  // space is 2 tasks per point (sync / compressed) for load balance.
  core::global_pool().parallel_for(0, 2 * npoints, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const auto i = static_cast<std::size_t>(t / 2);
      core::Cluster c = cluster;
      c.world_size = worker_counts[i];
      points[i].workers = worker_counts[i];
      if (t % 2 == 0)
        points[i].sync = measure(c, options, baseline, workload, protocol);
      else
        points[i].compressed = measure(c, options, config, workload, protocol);
    }
  });
  return points;
}

}  // namespace gradcomp::sim
