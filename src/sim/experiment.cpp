#include "sim/experiment.hpp"

#include <stdexcept>

namespace gradcomp::sim {

Measurement measure(const core::Cluster& cluster, const SimOptions& options,
                    const compress::CompressorConfig& config, const core::Workload& workload,
                    const MeasurementProtocol& protocol) {
  if (protocol.iterations <= protocol.warmup)
    throw std::invalid_argument("measure: iterations must exceed warmup");

  ClusterSim sim(cluster, options);
  stats::Summary total(static_cast<std::size_t>(protocol.warmup));
  stats::Summary encode(static_cast<std::size_t>(protocol.warmup));
  stats::Summary decode(static_cast<std::size_t>(protocol.warmup));
  stats::Summary comm(static_cast<std::size_t>(protocol.warmup));
  for (int i = 0; i < protocol.iterations; ++i) {
    const SimResult r = sim.run_compressed(config, workload);
    total.add(r.iteration_s);
    encode.add(r.encode_s);
    decode.add(r.decode_s);
    comm.add(r.comm_s);
  }
  return Measurement{total.mean(), total.stddev(), encode.mean(), decode.mean(), comm.mean()};
}

std::vector<ScalingPoint> weak_scaling(core::Cluster cluster, const SimOptions& options,
                                       const compress::CompressorConfig& config,
                                       const core::Workload& workload,
                                       const std::vector<int>& worker_counts,
                                       const MeasurementProtocol& protocol) {
  std::vector<ScalingPoint> points;
  points.reserve(worker_counts.size());
  const compress::CompressorConfig baseline{};  // syncSGD
  for (int p : worker_counts) {
    cluster.world_size = p;
    ScalingPoint pt;
    pt.workers = p;
    pt.sync = measure(cluster, options, baseline, workload, protocol);
    pt.compressed = measure(cluster, options, config, workload, protocol);
    points.push_back(pt);
  }
  return points;
}

}  // namespace gradcomp::sim
