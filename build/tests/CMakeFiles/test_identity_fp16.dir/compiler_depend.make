# Empty compiler generated dependencies file for test_identity_fp16.
# This may be replaced when dependencies are built.
