file(REMOVE_RECURSE
  "CMakeFiles/test_ddp_sim.dir/test_ddp_sim.cpp.o"
  "CMakeFiles/test_ddp_sim.dir/test_ddp_sim.cpp.o.d"
  "test_ddp_sim"
  "test_ddp_sim.pdb"
  "test_ddp_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
