file(REMOVE_RECURSE
  "CMakeFiles/test_signsgd.dir/test_signsgd.cpp.o"
  "CMakeFiles/test_signsgd.dir/test_signsgd.cpp.o.d"
  "test_signsgd"
  "test_signsgd.pdb"
  "test_signsgd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signsgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
