# Empty dependencies file for test_signsgd.
# This may be replaced when dependencies are built.
