file(REMOVE_RECURSE
  "CMakeFiles/test_thread_comm.dir/test_thread_comm.cpp.o"
  "CMakeFiles/test_thread_comm.dir/test_thread_comm.cpp.o.d"
  "test_thread_comm"
  "test_thread_comm.pdb"
  "test_thread_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
