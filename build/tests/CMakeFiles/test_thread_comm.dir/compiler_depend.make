# Empty compiler generated dependencies file for test_thread_comm.
# This may be replaced when dependencies are built.
