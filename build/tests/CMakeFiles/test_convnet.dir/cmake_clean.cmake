file(REMOVE_RECURSE
  "CMakeFiles/test_convnet.dir/test_convnet.cpp.o"
  "CMakeFiles/test_convnet.dir/test_convnet.cpp.o.d"
  "test_convnet"
  "test_convnet.pdb"
  "test_convnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
