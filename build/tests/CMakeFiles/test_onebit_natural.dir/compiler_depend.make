# Empty compiler generated dependencies file for test_onebit_natural.
# This may be replaced when dependencies are built.
