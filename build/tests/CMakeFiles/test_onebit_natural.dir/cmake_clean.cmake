file(REMOVE_RECURSE
  "CMakeFiles/test_onebit_natural.dir/test_onebit_natural.cpp.o"
  "CMakeFiles/test_onebit_natural.dir/test_onebit_natural.cpp.o.d"
  "test_onebit_natural"
  "test_onebit_natural.pdb"
  "test_onebit_natural[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_onebit_natural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
