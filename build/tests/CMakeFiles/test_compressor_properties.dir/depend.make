# Empty dependencies file for test_compressor_properties.
# This may be replaced when dependencies are built.
