file(REMOVE_RECURSE
  "CMakeFiles/test_compressor_properties.dir/test_compressor_properties.cpp.o"
  "CMakeFiles/test_compressor_properties.dir/test_compressor_properties.cpp.o.d"
  "test_compressor_properties"
  "test_compressor_properties.pdb"
  "test_compressor_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compressor_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
