file(REMOVE_RECURSE
  "CMakeFiles/test_randomk.dir/test_randomk.cpp.o"
  "CMakeFiles/test_randomk.dir/test_randomk.cpp.o.d"
  "test_randomk"
  "test_randomk.pdb"
  "test_randomk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_randomk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
