# Empty compiler generated dependencies file for test_randomk.
# This may be replaced when dependencies are built.
