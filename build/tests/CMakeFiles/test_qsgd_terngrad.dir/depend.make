# Empty dependencies file for test_qsgd_terngrad.
# This may be replaced when dependencies are built.
