file(REMOVE_RECURSE
  "CMakeFiles/test_qsgd_terngrad.dir/test_qsgd_terngrad.cpp.o"
  "CMakeFiles/test_qsgd_terngrad.dir/test_qsgd_terngrad.cpp.o.d"
  "test_qsgd_terngrad"
  "test_qsgd_terngrad.pdb"
  "test_qsgd_terngrad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qsgd_terngrad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
