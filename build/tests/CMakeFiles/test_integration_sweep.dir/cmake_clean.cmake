file(REMOVE_RECURSE
  "CMakeFiles/test_integration_sweep.dir/test_integration_sweep.cpp.o"
  "CMakeFiles/test_integration_sweep.dir/test_integration_sweep.cpp.o.d"
  "test_integration_sweep"
  "test_integration_sweep.pdb"
  "test_integration_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
