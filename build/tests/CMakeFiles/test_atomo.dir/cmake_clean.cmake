file(REMOVE_RECURSE
  "CMakeFiles/test_atomo.dir/test_atomo.cpp.o"
  "CMakeFiles/test_atomo.dir/test_atomo.cpp.o.d"
  "test_atomo"
  "test_atomo.pdb"
  "test_atomo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
