# Empty dependencies file for test_atomo.
# This may be replaced when dependencies are built.
