# Empty dependencies file for test_bucketing.
# This may be replaced when dependencies are built.
