file(REMOVE_RECURSE
  "CMakeFiles/test_bucketing.dir/test_bucketing.cpp.o"
  "CMakeFiles/test_bucketing.dir/test_bucketing.cpp.o.d"
  "test_bucketing"
  "test_bucketing.pdb"
  "test_bucketing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bucketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
