
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_perf_model.cpp" "tests/CMakeFiles/test_perf_model.dir/test_perf_model.cpp.o" "gcc" "tests/CMakeFiles/test_perf_model.dir/test_perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gradcomp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gradcomp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/gradcomp_train.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gradcomp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gradcomp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/gradcomp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gradcomp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/gradcomp_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gradcomp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
