# Empty compiler generated dependencies file for test_topk_compressor.
# This may be replaced when dependencies are built.
