file(REMOVE_RECURSE
  "CMakeFiles/test_topk_compressor.dir/test_topk_compressor.cpp.o"
  "CMakeFiles/test_topk_compressor.dir/test_topk_compressor.cpp.o.d"
  "test_topk_compressor"
  "test_topk_compressor.pdb"
  "test_topk_compressor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topk_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
