file(REMOVE_RECURSE
  "CMakeFiles/test_wire_formats.dir/test_wire_formats.cpp.o"
  "CMakeFiles/test_wire_formats.dir/test_wire_formats.cpp.o.d"
  "test_wire_formats"
  "test_wire_formats.pdb"
  "test_wire_formats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
