# Empty compiler generated dependencies file for test_wire_formats.
# This may be replaced when dependencies are built.
