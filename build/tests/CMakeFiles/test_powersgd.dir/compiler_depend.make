# Empty compiler generated dependencies file for test_powersgd.
# This may be replaced when dependencies are built.
