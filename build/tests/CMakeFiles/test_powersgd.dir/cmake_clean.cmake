file(REMOVE_RECURSE
  "CMakeFiles/test_powersgd.dir/test_powersgd.cpp.o"
  "CMakeFiles/test_powersgd.dir/test_powersgd.cpp.o.d"
  "test_powersgd"
  "test_powersgd.pdb"
  "test_powersgd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_powersgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
