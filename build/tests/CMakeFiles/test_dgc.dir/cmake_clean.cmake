file(REMOVE_RECURSE
  "CMakeFiles/test_dgc.dir/test_dgc.cpp.o"
  "CMakeFiles/test_dgc.dir/test_dgc.cpp.o.d"
  "test_dgc"
  "test_dgc.pdb"
  "test_dgc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
