# Empty compiler generated dependencies file for test_dgc.
# This may be replaced when dependencies are built.
