# Empty compiler generated dependencies file for gradcomp_train.
# This may be replaced when dependencies are built.
