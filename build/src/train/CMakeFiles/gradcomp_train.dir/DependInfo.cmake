
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/conv.cpp" "src/train/CMakeFiles/gradcomp_train.dir/conv.cpp.o" "gcc" "src/train/CMakeFiles/gradcomp_train.dir/conv.cpp.o.d"
  "/root/repo/src/train/convnet.cpp" "src/train/CMakeFiles/gradcomp_train.dir/convnet.cpp.o" "gcc" "src/train/CMakeFiles/gradcomp_train.dir/convnet.cpp.o.d"
  "/root/repo/src/train/data.cpp" "src/train/CMakeFiles/gradcomp_train.dir/data.cpp.o" "gcc" "src/train/CMakeFiles/gradcomp_train.dir/data.cpp.o.d"
  "/root/repo/src/train/nn.cpp" "src/train/CMakeFiles/gradcomp_train.dir/nn.cpp.o" "gcc" "src/train/CMakeFiles/gradcomp_train.dir/nn.cpp.o.d"
  "/root/repo/src/train/optimizer.cpp" "src/train/CMakeFiles/gradcomp_train.dir/optimizer.cpp.o" "gcc" "src/train/CMakeFiles/gradcomp_train.dir/optimizer.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/train/CMakeFiles/gradcomp_train.dir/trainer.cpp.o" "gcc" "src/train/CMakeFiles/gradcomp_train.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/gradcomp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/gradcomp_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gradcomp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gradcomp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
