file(REMOVE_RECURSE
  "CMakeFiles/gradcomp_train.dir/conv.cpp.o"
  "CMakeFiles/gradcomp_train.dir/conv.cpp.o.d"
  "CMakeFiles/gradcomp_train.dir/convnet.cpp.o"
  "CMakeFiles/gradcomp_train.dir/convnet.cpp.o.d"
  "CMakeFiles/gradcomp_train.dir/data.cpp.o"
  "CMakeFiles/gradcomp_train.dir/data.cpp.o.d"
  "CMakeFiles/gradcomp_train.dir/nn.cpp.o"
  "CMakeFiles/gradcomp_train.dir/nn.cpp.o.d"
  "CMakeFiles/gradcomp_train.dir/optimizer.cpp.o"
  "CMakeFiles/gradcomp_train.dir/optimizer.cpp.o.d"
  "CMakeFiles/gradcomp_train.dir/trainer.cpp.o"
  "CMakeFiles/gradcomp_train.dir/trainer.cpp.o.d"
  "libgradcomp_train.a"
  "libgradcomp_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcomp_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
