file(REMOVE_RECURSE
  "libgradcomp_train.a"
)
