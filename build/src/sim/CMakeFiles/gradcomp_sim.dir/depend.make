# Empty dependencies file for gradcomp_sim.
# This may be replaced when dependencies are built.
