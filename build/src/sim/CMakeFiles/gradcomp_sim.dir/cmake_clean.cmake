file(REMOVE_RECURSE
  "CMakeFiles/gradcomp_sim.dir/ddp_sim.cpp.o"
  "CMakeFiles/gradcomp_sim.dir/ddp_sim.cpp.o.d"
  "CMakeFiles/gradcomp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/gradcomp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/gradcomp_sim.dir/experiment.cpp.o"
  "CMakeFiles/gradcomp_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/gradcomp_sim.dir/probe.cpp.o"
  "CMakeFiles/gradcomp_sim.dir/probe.cpp.o.d"
  "libgradcomp_sim.a"
  "libgradcomp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcomp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
