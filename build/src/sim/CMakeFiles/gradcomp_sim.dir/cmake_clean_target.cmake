file(REMOVE_RECURSE
  "libgradcomp_sim.a"
)
