file(REMOVE_RECURSE
  "CMakeFiles/gradcomp_compress.dir/atomo.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/atomo.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/dgc.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/dgc.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/fp16.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/fp16.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/identity.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/identity.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/natural.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/natural.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/onebit.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/onebit.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/powersgd.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/powersgd.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/qsgd.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/qsgd.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/randomk.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/randomk.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/registry.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/registry.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/signsgd.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/signsgd.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/terngrad.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/terngrad.cpp.o.d"
  "CMakeFiles/gradcomp_compress.dir/topk_compressor.cpp.o"
  "CMakeFiles/gradcomp_compress.dir/topk_compressor.cpp.o.d"
  "libgradcomp_compress.a"
  "libgradcomp_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcomp_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
