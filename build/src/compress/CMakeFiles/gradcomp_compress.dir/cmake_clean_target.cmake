file(REMOVE_RECURSE
  "libgradcomp_compress.a"
)
