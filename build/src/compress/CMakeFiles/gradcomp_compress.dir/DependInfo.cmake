
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/atomo.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/atomo.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/atomo.cpp.o.d"
  "/root/repo/src/compress/dgc.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/dgc.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/dgc.cpp.o.d"
  "/root/repo/src/compress/fp16.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/fp16.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/fp16.cpp.o.d"
  "/root/repo/src/compress/identity.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/identity.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/identity.cpp.o.d"
  "/root/repo/src/compress/natural.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/natural.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/natural.cpp.o.d"
  "/root/repo/src/compress/onebit.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/onebit.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/onebit.cpp.o.d"
  "/root/repo/src/compress/powersgd.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/powersgd.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/powersgd.cpp.o.d"
  "/root/repo/src/compress/qsgd.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/qsgd.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/qsgd.cpp.o.d"
  "/root/repo/src/compress/randomk.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/randomk.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/randomk.cpp.o.d"
  "/root/repo/src/compress/registry.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/registry.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/registry.cpp.o.d"
  "/root/repo/src/compress/signsgd.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/signsgd.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/signsgd.cpp.o.d"
  "/root/repo/src/compress/terngrad.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/terngrad.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/terngrad.cpp.o.d"
  "/root/repo/src/compress/topk_compressor.cpp" "src/compress/CMakeFiles/gradcomp_compress.dir/topk_compressor.cpp.o" "gcc" "src/compress/CMakeFiles/gradcomp_compress.dir/topk_compressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/gradcomp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/gradcomp_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gradcomp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
