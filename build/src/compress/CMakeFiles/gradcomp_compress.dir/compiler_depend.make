# Empty compiler generated dependencies file for gradcomp_compress.
# This may be replaced when dependencies are built.
