
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/bucketing.cpp" "src/models/CMakeFiles/gradcomp_models.dir/bucketing.cpp.o" "gcc" "src/models/CMakeFiles/gradcomp_models.dir/bucketing.cpp.o.d"
  "/root/repo/src/models/model_profile.cpp" "src/models/CMakeFiles/gradcomp_models.dir/model_profile.cpp.o" "gcc" "src/models/CMakeFiles/gradcomp_models.dir/model_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/gradcomp_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
