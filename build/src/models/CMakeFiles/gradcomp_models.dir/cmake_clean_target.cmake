file(REMOVE_RECURSE
  "libgradcomp_models.a"
)
