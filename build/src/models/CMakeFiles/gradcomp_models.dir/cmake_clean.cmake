file(REMOVE_RECURSE
  "CMakeFiles/gradcomp_models.dir/bucketing.cpp.o"
  "CMakeFiles/gradcomp_models.dir/bucketing.cpp.o.d"
  "CMakeFiles/gradcomp_models.dir/model_profile.cpp.o"
  "CMakeFiles/gradcomp_models.dir/model_profile.cpp.o.d"
  "libgradcomp_models.a"
  "libgradcomp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcomp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
