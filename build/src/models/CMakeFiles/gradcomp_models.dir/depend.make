# Empty dependencies file for gradcomp_models.
# This may be replaced when dependencies are built.
