# Empty dependencies file for gradcomp_stats.
# This may be replaced when dependencies are built.
