file(REMOVE_RECURSE
  "CMakeFiles/gradcomp_stats.dir/summary.cpp.o"
  "CMakeFiles/gradcomp_stats.dir/summary.cpp.o.d"
  "CMakeFiles/gradcomp_stats.dir/table.cpp.o"
  "CMakeFiles/gradcomp_stats.dir/table.cpp.o.d"
  "libgradcomp_stats.a"
  "libgradcomp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcomp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
