file(REMOVE_RECURSE
  "libgradcomp_stats.a"
)
