file(REMOVE_RECURSE
  "CMakeFiles/gradcomp_comm.dir/cost_model.cpp.o"
  "CMakeFiles/gradcomp_comm.dir/cost_model.cpp.o.d"
  "CMakeFiles/gradcomp_comm.dir/thread_comm.cpp.o"
  "CMakeFiles/gradcomp_comm.dir/thread_comm.cpp.o.d"
  "libgradcomp_comm.a"
  "libgradcomp_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcomp_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
