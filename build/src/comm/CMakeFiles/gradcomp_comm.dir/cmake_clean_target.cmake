file(REMOVE_RECURSE
  "libgradcomp_comm.a"
)
