# Empty compiler generated dependencies file for gradcomp_comm.
# This may be replaced when dependencies are built.
