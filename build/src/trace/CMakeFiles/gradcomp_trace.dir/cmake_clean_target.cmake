file(REMOVE_RECURSE
  "libgradcomp_trace.a"
)
