# Empty dependencies file for gradcomp_trace.
# This may be replaced when dependencies are built.
