file(REMOVE_RECURSE
  "CMakeFiles/gradcomp_trace.dir/timeline.cpp.o"
  "CMakeFiles/gradcomp_trace.dir/timeline.cpp.o.d"
  "libgradcomp_trace.a"
  "libgradcomp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcomp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
