file(REMOVE_RECURSE
  "libgradcomp_core.a"
)
