# Empty compiler generated dependencies file for gradcomp_core.
# This may be replaced when dependencies are built.
