file(REMOVE_RECURSE
  "CMakeFiles/gradcomp_core.dir/advisor.cpp.o"
  "CMakeFiles/gradcomp_core.dir/advisor.cpp.o.d"
  "CMakeFiles/gradcomp_core.dir/calibration.cpp.o"
  "CMakeFiles/gradcomp_core.dir/calibration.cpp.o.d"
  "CMakeFiles/gradcomp_core.dir/perf_model.cpp.o"
  "CMakeFiles/gradcomp_core.dir/perf_model.cpp.o.d"
  "CMakeFiles/gradcomp_core.dir/whatif.cpp.o"
  "CMakeFiles/gradcomp_core.dir/whatif.cpp.o.d"
  "libgradcomp_core.a"
  "libgradcomp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcomp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
