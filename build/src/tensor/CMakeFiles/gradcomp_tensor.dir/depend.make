# Empty dependencies file for gradcomp_tensor.
# This may be replaced when dependencies are built.
