file(REMOVE_RECURSE
  "CMakeFiles/gradcomp_tensor.dir/half.cpp.o"
  "CMakeFiles/gradcomp_tensor.dir/half.cpp.o.d"
  "CMakeFiles/gradcomp_tensor.dir/linalg.cpp.o"
  "CMakeFiles/gradcomp_tensor.dir/linalg.cpp.o.d"
  "CMakeFiles/gradcomp_tensor.dir/rng.cpp.o"
  "CMakeFiles/gradcomp_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/gradcomp_tensor.dir/tensor.cpp.o"
  "CMakeFiles/gradcomp_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/gradcomp_tensor.dir/topk.cpp.o"
  "CMakeFiles/gradcomp_tensor.dir/topk.cpp.o.d"
  "libgradcomp_tensor.a"
  "libgradcomp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcomp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
