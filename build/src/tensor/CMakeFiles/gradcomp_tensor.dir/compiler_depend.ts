# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gradcomp_tensor.
