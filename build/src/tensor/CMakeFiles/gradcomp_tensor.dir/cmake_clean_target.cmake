file(REMOVE_RECURSE
  "libgradcomp_tensor.a"
)
