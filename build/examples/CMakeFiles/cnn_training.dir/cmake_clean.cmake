file(REMOVE_RECURSE
  "CMakeFiles/cnn_training.dir/cnn_training.cpp.o"
  "CMakeFiles/cnn_training.dir/cnn_training.cpp.o.d"
  "cnn_training"
  "cnn_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
