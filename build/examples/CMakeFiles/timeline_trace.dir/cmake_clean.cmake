file(REMOVE_RECURSE
  "CMakeFiles/timeline_trace.dir/timeline_trace.cpp.o"
  "CMakeFiles/timeline_trace.dir/timeline_trace.cpp.o.d"
  "timeline_trace"
  "timeline_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
