# Empty dependencies file for fig7_batch_size.
# This may be replaced when dependencies are built.
