file(REMOVE_RECURSE
  "CMakeFiles/ablation_accumulation.dir/ablation_accumulation.cpp.o"
  "CMakeFiles/ablation_accumulation.dir/ablation_accumulation.cpp.o.d"
  "ablation_accumulation"
  "ablation_accumulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_accumulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
