# Empty dependencies file for ablation_allreduce.
# This may be replaced when dependencies are built.
