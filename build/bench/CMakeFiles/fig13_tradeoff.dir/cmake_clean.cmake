file(REMOVE_RECURSE
  "CMakeFiles/fig13_tradeoff.dir/fig13_tradeoff.cpp.o"
  "CMakeFiles/fig13_tradeoff.dir/fig13_tradeoff.cpp.o.d"
  "fig13_tradeoff"
  "fig13_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
