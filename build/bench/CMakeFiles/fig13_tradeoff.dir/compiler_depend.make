# Empty compiler generated dependencies file for fig13_tradeoff.
# This may be replaced when dependencies are built.
