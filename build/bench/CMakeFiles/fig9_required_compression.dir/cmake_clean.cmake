file(REMOVE_RECURSE
  "CMakeFiles/fig9_required_compression.dir/fig9_required_compression.cpp.o"
  "CMakeFiles/fig9_required_compression.dir/fig9_required_compression.cpp.o.d"
  "fig9_required_compression"
  "fig9_required_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_required_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
