# Empty dependencies file for fig9_required_compression.
# This may be replaced when dependencies are built.
