# Empty compiler generated dependencies file for ablation_vgg_best_case.
# This may be replaced when dependencies are built.
