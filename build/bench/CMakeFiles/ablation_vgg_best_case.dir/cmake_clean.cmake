file(REMOVE_RECURSE
  "CMakeFiles/ablation_vgg_best_case.dir/ablation_vgg_best_case.cpp.o"
  "CMakeFiles/ablation_vgg_best_case.dir/ablation_vgg_best_case.cpp.o.d"
  "ablation_vgg_best_case"
  "ablation_vgg_best_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vgg_best_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
