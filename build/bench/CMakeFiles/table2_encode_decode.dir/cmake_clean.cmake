file(REMOVE_RECURSE
  "CMakeFiles/table2_encode_decode.dir/table2_encode_decode.cpp.o"
  "CMakeFiles/table2_encode_decode.dir/table2_encode_decode.cpp.o.d"
  "table2_encode_decode"
  "table2_encode_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_encode_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
