# Empty compiler generated dependencies file for table2_encode_decode.
# This may be replaced when dependencies are built.
