file(REMOVE_RECURSE
  "CMakeFiles/fig1_illustration.dir/fig1_illustration.cpp.o"
  "CMakeFiles/fig1_illustration.dir/fig1_illustration.cpp.o.d"
  "fig1_illustration"
  "fig1_illustration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_illustration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
