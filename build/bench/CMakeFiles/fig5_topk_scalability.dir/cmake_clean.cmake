file(REMOVE_RECURSE
  "CMakeFiles/fig5_topk_scalability.dir/fig5_topk_scalability.cpp.o"
  "CMakeFiles/fig5_topk_scalability.dir/fig5_topk_scalability.cpp.o.d"
  "fig5_topk_scalability"
  "fig5_topk_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_topk_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
