# Empty dependencies file for fig5_topk_scalability.
# This may be replaced when dependencies are built.
