# Empty dependencies file for ablation_epoch_time.
# This may be replaced when dependencies are built.
