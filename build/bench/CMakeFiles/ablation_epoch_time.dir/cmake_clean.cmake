file(REMOVE_RECURSE
  "CMakeFiles/ablation_epoch_time.dir/ablation_epoch_time.cpp.o"
  "CMakeFiles/ablation_epoch_time.dir/ablation_epoch_time.cpp.o.d"
  "ablation_epoch_time"
  "ablation_epoch_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_epoch_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
