file(REMOVE_RECURSE
  "CMakeFiles/fig11_bandwidth_whatif.dir/fig11_bandwidth_whatif.cpp.o"
  "CMakeFiles/fig11_bandwidth_whatif.dir/fig11_bandwidth_whatif.cpp.o.d"
  "fig11_bandwidth_whatif"
  "fig11_bandwidth_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bandwidth_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
