# Empty dependencies file for fig11_bandwidth_whatif.
# This may be replaced when dependencies are built.
