# Empty dependencies file for fig4_powersgd_scalability.
# This may be replaced when dependencies are built.
