file(REMOVE_RECURSE
  "CMakeFiles/fig4_powersgd_scalability.dir/fig4_powersgd_scalability.cpp.o"
  "CMakeFiles/fig4_powersgd_scalability.dir/fig4_powersgd_scalability.cpp.o.d"
  "fig4_powersgd_scalability"
  "fig4_powersgd_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_powersgd_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
