# Empty dependencies file for fig6_signsgd_scalability.
# This may be replaced when dependencies are built.
