file(REMOVE_RECURSE
  "CMakeFiles/fig10_ideal_gap.dir/fig10_ideal_gap.cpp.o"
  "CMakeFiles/fig10_ideal_gap.dir/fig10_ideal_gap.cpp.o.d"
  "fig10_ideal_gap"
  "fig10_ideal_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ideal_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
