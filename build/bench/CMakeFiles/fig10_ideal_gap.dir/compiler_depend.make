# Empty compiler generated dependencies file for fig10_ideal_gap.
# This may be replaced when dependencies are built.
