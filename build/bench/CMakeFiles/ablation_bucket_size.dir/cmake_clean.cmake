file(REMOVE_RECURSE
  "CMakeFiles/ablation_bucket_size.dir/ablation_bucket_size.cpp.o"
  "CMakeFiles/ablation_bucket_size.dir/ablation_bucket_size.cpp.o.d"
  "ablation_bucket_size"
  "ablation_bucket_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bucket_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
