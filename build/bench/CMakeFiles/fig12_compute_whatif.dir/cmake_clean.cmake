file(REMOVE_RECURSE
  "CMakeFiles/fig12_compute_whatif.dir/fig12_compute_whatif.cpp.o"
  "CMakeFiles/fig12_compute_whatif.dir/fig12_compute_whatif.cpp.o.d"
  "fig12_compute_whatif"
  "fig12_compute_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_compute_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
