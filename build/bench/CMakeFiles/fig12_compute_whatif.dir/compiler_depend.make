# Empty compiler generated dependencies file for fig12_compute_whatif.
# This may be replaced when dependencies are built.
