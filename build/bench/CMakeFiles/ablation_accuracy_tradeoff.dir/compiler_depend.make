# Empty compiler generated dependencies file for ablation_accuracy_tradeoff.
# This may be replaced when dependencies are built.
