file(REMOVE_RECURSE
  "CMakeFiles/ablation_accuracy_tradeoff.dir/ablation_accuracy_tradeoff.cpp.o"
  "CMakeFiles/ablation_accuracy_tradeoff.dir/ablation_accuracy_tradeoff.cpp.o.d"
  "ablation_accuracy_tradeoff"
  "ablation_accuracy_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_accuracy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
